"""Service-level objectives: declarative targets, sliding-window burn rates.

An *objective* names a slice of traffic (one endpoint, or ``*`` for all
of it), a sliding window, and one or both of

* a **latency target** — the observed p95 latency over the window must
  stay at or under ``latency_p95_s``;
* an **error budget** — the fraction of requests answered with a 5xx
  status over the window must stay under ``error_rate_budget``.  The
  reported **burn rate** is ``observed error rate / budget``: 1.0 means
  the window is consuming its budget exactly as fast as allowed, and
  anything above ``burn_rate_threshold`` (default 1.0) is a breach.

Objectives are declared in a JSON config (schema
``repro.obs/slo-config/v1``)::

    {"schema": "repro.obs/slo-config/v1",
     "objectives": [
       {"name": "solve-latency", "endpoint": "/solve", "window_s": 3600,
        "latency_p95_s": 2.0},
       {"name": "availability", "endpoint": "*", "window_s": 3600,
        "error_rate_budget": 0.01, "burn_rate_threshold": 1.0}]}

:func:`evaluate_slos` computes a ``repro.obs/slo-report/v1`` document
from ``repro.obs/access/v1`` request records (the access log is the
measurement source — see :mod:`repro.obs.access`); it backs the
``repro-defender slo check|report`` CLI and the SLO panel of the HTML
run report.  :class:`SloEngine` is the live in-process form: the serve
layer feeds it one observation per request, ``GET /slo`` renders its
:meth:`~SloEngine.status_document`, and each transition into breach
publishes one ``slo.breach`` event on the telemetry bus.

Client errors (4xx) do not burn the error budget — a flood of malformed
requests is the client's defect, not the service's — but they do count
toward the latency sample, since the service still spent that time.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from time import time
from typing import Any, Dict, Iterable, List, Optional

import repro.obs.events as _events
import repro.obs.metrics as _metrics

__all__ = [
    "SLO_CONFIG_SCHEMA",
    "SLO_REPORT_SCHEMA",
    "SloObjective",
    "SloEngine",
    "default_objectives",
    "load_slo_config",
    "evaluate_slos",
]

SLO_CONFIG_SCHEMA = "repro.obs/slo-config/v1"
SLO_REPORT_SCHEMA = "repro.obs/slo-report/v1"

#: Observations buffered by a live engine (oldest dropped): bounds the
#: memory of a long-running service regardless of window lengths.
DEFAULT_ENGINE_CAPACITY = 65536


class SloObjective:
    """One declarative objective over a slice of request traffic.

    ``endpoint`` selects the traffic (an endpoint name as it appears in
    access records, or ``"*"`` for all requests); ``window_s`` is the
    sliding evaluation window ending at "now".  At least one of
    ``latency_p95_s`` (seconds) and ``error_rate_budget`` (a fraction in
    ``(0, 1]``) must be set.
    """

    __slots__ = ("name", "endpoint", "window_s", "latency_p95_s",
                 "error_rate_budget", "burn_rate_threshold")

    def __init__(
        self,
        name: str,
        endpoint: str = "*",
        window_s: float = 3600.0,
        latency_p95_s: Optional[float] = None,
        error_rate_budget: Optional[float] = None,
        burn_rate_threshold: float = 1.0,
    ) -> None:
        if not name or not isinstance(name, str):
            raise ValueError("objective needs a non-empty string name")
        if not isinstance(endpoint, str) or not endpoint:
            raise ValueError(f"objective {name!r}: endpoint must be a "
                             "non-empty string (use '*' for all traffic)")
        if not isinstance(window_s, (int, float)) or not window_s > 0:
            raise ValueError(f"objective {name!r}: window_s must be "
                             f"positive; got {window_s!r}")
        if latency_p95_s is None and error_rate_budget is None:
            raise ValueError(f"objective {name!r} needs latency_p95_s "
                             "and/or error_rate_budget")
        if latency_p95_s is not None and not latency_p95_s > 0:
            raise ValueError(f"objective {name!r}: latency_p95_s must be "
                             f"positive; got {latency_p95_s!r}")
        if error_rate_budget is not None and not (
                0 < error_rate_budget <= 1):
            raise ValueError(f"objective {name!r}: error_rate_budget must "
                             f"be in (0, 1]; got {error_rate_budget!r}")
        if not burn_rate_threshold > 0:
            raise ValueError(f"objective {name!r}: burn_rate_threshold "
                             f"must be positive; got {burn_rate_threshold!r}")
        self.name = name
        self.endpoint = endpoint
        self.window_s = float(window_s)
        self.latency_p95_s = (
            None if latency_p95_s is None else float(latency_p95_s))
        self.error_rate_budget = (
            None if error_rate_budget is None else float(error_rate_budget))
        self.burn_rate_threshold = float(burn_rate_threshold)

    def matches(self, endpoint: str) -> bool:
        """True when this objective covers requests to ``endpoint``."""
        return self.endpoint == "*" or self.endpoint == endpoint

    def to_dict(self) -> Dict[str, Any]:
        """The objective as a plain config-schema dict."""
        doc: Dict[str, Any] = {
            "name": self.name,
            "endpoint": self.endpoint,
            "window_s": self.window_s,
            "burn_rate_threshold": self.burn_rate_threshold,
        }
        if self.latency_p95_s is not None:
            doc["latency_p95_s"] = self.latency_p95_s
        if self.error_rate_budget is not None:
            doc["error_rate_budget"] = self.error_rate_budget
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SloObjective":
        """Build an objective from one config-schema dict entry."""
        if not isinstance(doc, dict):
            raise ValueError(f"objective entry must be an object; got "
                             f"{type(doc).__name__}")
        known = {"name", "endpoint", "window_s", "latency_p95_s",
                 "error_rate_budget", "burn_rate_threshold"}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(
                f"unknown objective keys: {', '.join(unknown)} "
                f"(allowed: {', '.join(sorted(known))})")
        kwargs = dict(doc)
        name = kwargs.pop("name", "")
        return cls(name, **kwargs)

    def __repr__(self) -> str:
        return (f"SloObjective({self.name!r}, endpoint={self.endpoint!r}, "
                f"window_s={self.window_s:g})")


def default_objectives() -> List[SloObjective]:
    """The built-in objectives a service runs with when no config is
    given: 1% availability budget and a 5s p95 across all endpoints."""
    return [
        SloObjective("availability", endpoint="*", window_s=3600.0,
                     error_rate_budget=0.01),
        SloObjective("latency", endpoint="*", window_s=3600.0,
                     latency_p95_s=5.0),
    ]


def load_slo_config(path: "Path | str") -> List[SloObjective]:
    """Load and validate a ``repro.obs/slo-config/v1`` file.

    Raises ``ValueError`` on a missing/malformed file, a wrong schema
    tag, or any invalid objective — config defects must fail loudly at
    startup, not silently during an incident.
    """
    with _metrics.timer("slo.config.load.seconds"):
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"cannot read SLO config {path}: {exc}") from exc
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"SLO config {path} is not valid JSON: "
                             f"{exc}") from exc
        if not isinstance(doc, dict):
            raise ValueError(f"SLO config {path} must be a JSON object")
        if doc.get("schema") != SLO_CONFIG_SCHEMA:
            raise ValueError(
                f"SLO config {path} has schema {doc.get('schema')!r}; "
                f"expected {SLO_CONFIG_SCHEMA!r}")
        raw = doc.get("objectives")
        if not isinstance(raw, list) or not raw:
            raise ValueError(f"SLO config {path} needs a non-empty "
                             "'objectives' list")
        objectives = [SloObjective.from_dict(entry) for entry in raw]
        names = [obj.name for obj in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"SLO config {path} has duplicate objective "
                             "names")
    return objectives


def _percentile(sorted_values: List[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending list (same convention as
    the metrics registry's histogram summaries)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(len(sorted_values) * pct / 100.0 + 0.9999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _evaluate_one(objective: SloObjective,
                  records: Iterable[Dict[str, Any]],
                  now: float) -> Dict[str, Any]:
    cutoff = now - objective.window_s
    latencies: List[float] = []
    requests = 0
    errors = 0
    for record in records:
        endpoint = record.get("endpoint", "")
        ts = record.get("ts", 0.0)
        if not objective.matches(str(endpoint)):
            continue
        if not isinstance(ts, (int, float)) or ts < cutoff or ts > now:
            continue
        requests += 1
        status = record.get("status", 0)
        if isinstance(status, int) and status >= 500:
            errors += 1
        latency = record.get("latency_s")
        if isinstance(latency, (int, float)) and not isinstance(latency, bool):
            latencies.append(float(latency))
    latencies.sort()
    error_rate = (errors / requests) if requests else 0.0
    p95 = _percentile(latencies, 95.0)
    result: Dict[str, Any] = {
        "name": objective.name,
        "endpoint": objective.endpoint,
        "window_s": objective.window_s,
        "requests": requests,
        "errors": errors,
        "error_rate": error_rate,
        "latency_p95_s": p95,
        "objective": objective.to_dict(),
    }
    breached = False
    if objective.error_rate_budget is not None:
        burn_rate = error_rate / objective.error_rate_budget
        result["burn_rate"] = burn_rate
        result["budget_remaining"] = max(0.0, 1.0 - burn_rate)
        if burn_rate > objective.burn_rate_threshold:
            breached = True
    if objective.latency_p95_s is not None and requests:
        if p95 > objective.latency_p95_s:
            breached = True
    result["breached"] = breached
    return result


def evaluate_slos(
    objectives: List[SloObjective],
    records: List[Dict[str, Any]],
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Evaluate objectives over access records into a report document.

    ``records`` are ``repro.obs/access/v1`` dicts (see
    :func:`repro.obs.access.read_access`).  ``now`` anchors the sliding
    windows; it defaults to the newest record timestamp — which makes a
    re-run over a committed fixture reproduce the same report — and to
    the wall clock when there are no records at all.
    """
    with _metrics.timer("slo.evaluate.seconds"):
        if now is None:
            stamps = [r.get("ts") for r in records
                      if isinstance(r.get("ts"), (int, float))]
            now = max(stamps) if stamps else time()
        results = [_evaluate_one(obj, records, now) for obj in objectives]
        breaches = [r["name"] for r in results if r["breached"]]
    return {
        "schema": SLO_REPORT_SCHEMA,
        "now": now,
        "results": results,
        "breaches": breaches,
    }


class SloEngine:
    """Live sliding-window SLO tracker fed one observation per request.

    The serve layer calls :meth:`observe` from its request-completion
    path (cheap: one deque append under a lock) and renders
    :meth:`status_document` for ``GET /slo``.  Each objective's
    transition from healthy to breached publishes one ``slo.breach``
    event and increments ``slo.breach.count``; recovery re-arms the
    objective so a later breach publishes again.
    """

    def __init__(self, objectives: Optional[List[SloObjective]] = None,
                 capacity: int = DEFAULT_ENGINE_CAPACITY) -> None:
        self.objectives = list(objectives) if objectives \
            else default_objectives()
        self._lock = threading.Lock()
        self._records: deque = deque(maxlen=capacity)  # repro: lock(_lock)
        self._breached: set = set()  # repro: lock(_lock)
        self._max_window = max(obj.window_s for obj in self.objectives)

    def observe(
        self,
        endpoint: str,
        status: int,
        latency_s: float,
        ts: Optional[float] = None,
    ) -> None:
        """Record one finished request (timestamped now by default)."""
        stamp = time() if ts is None else ts
        record = {"ts": stamp, "endpoint": endpoint, "status": status,
                  "latency_s": latency_s}
        with self._lock:
            self._records.append(record)
            # Prune observations no window can see anymore, so the
            # buffer tracks traffic age, not just the capacity cap.
            horizon = stamp - self._max_window
            while self._records and self._records[0]["ts"] < horizon:
                self._records.popleft()

    def status_document(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Evaluate all objectives over the buffered observations.

        Returns a ``repro.obs/slo-report/v1`` document (the ``GET /slo``
        body) anchored at the wall clock, and publishes ``slo.breach``
        events for objectives newly in breach.
        """
        with self._lock:
            records = list(self._records)
        report = evaluate_slos(self.objectives, records,
                               now=time() if now is None else now)
        newly_breached = []
        with self._lock:
            for result in report["results"]:
                name = result["name"]
                if result["breached"] and name not in self._breached:
                    self._breached.add(name)
                    newly_breached.append(result)
                elif not result["breached"]:
                    self._breached.discard(name)
        for result in newly_breached:
            _metrics.counter("slo.breach.count").inc()
            _events.publish(
                "slo.breach",
                objective=result["name"],
                endpoint=result["endpoint"],
                burn_rate=result.get("burn_rate"),
                latency_p95_s=result["latency_p95_s"],
                error_rate=result["error_rate"],
            )
        return report
