"""Structured per-request access log for the solve service.

One JSONL line per HTTP request — the operational record the SLO engine
(:mod:`repro.obs.slo`), ``repro-defender slo check`` and post-hoc
latency forensics consume.  Schema ``repro.obs/access/v1``::

    {"schema": "repro.obs/access/v1", "ts": 1754640000.123,
     "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736", "method": "POST",
     "endpoint": "/solve", "status": 200, "error_code": null,
     "latency_s": 0.0123, "cache_hit": false, "inflight": 1}

``trace_id`` is the request's W3C trace id (also echoed in the
``X-Request-Id`` response header and stamped into the ledger record and
run events — see :mod:`repro.obs.tracing`), so one grep joins the
access line with everything else the request produced.  ``error_code``
is the stable machine code of the error contract (``null`` on success);
``cache_hit`` is ``null`` for non-solver endpoints; ``inflight`` is the
worker-pool occupancy sampled at completion.

The log follows the obs cost contract: **opt-in and near-free when
off** (the default) — :func:`log_request` is a single boolean check
while disabled.  Enable with :func:`enable_access_log`, the CLI's
``--access-log`` flag, or ``REPRO_ACCESS=1`` in the environment
(``REPRO_ACCESS_DIR`` overrides the ``.repro/access/`` sink directory).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from time import time
from typing import Any, Dict, List, Optional

import repro.obs.metrics as _metrics
from repro.obs.log import get_logger

__all__ = [
    "ACCESS_SCHEMA",
    "DEFAULT_ACCESS_DIR",
    "enable_access_log",
    "disable_access_log",
    "access_log_enabled",
    "access_log_path",
    "log_request",
    "read_access",
]

_log = get_logger("repro.obs.access")

ACCESS_SCHEMA = "repro.obs/access/v1"
DEFAULT_ACCESS_DIR = ".repro/access"
SINK_FILENAME = "access.jsonl"


class _AccessState:
    """Process-global access-log switch plus its append-only sink."""

    __slots__ = ("enabled", "sink", "sink_path", "lock")

    def __init__(self) -> None:
        self.enabled = False  # repro: lock(lock)
        self.sink = None  # repro: lock(lock)
        self.sink_path: Optional[Path] = None  # repro: lock(lock)
        self.lock = threading.Lock()
        if os.environ.get("REPRO_ACCESS", "") not in ("", "0", "false", "no"):
            self.enabled = True
            self._open_sink(Path(
                os.environ.get("REPRO_ACCESS_DIR", DEFAULT_ACCESS_DIR)
            ))

    def _open_sink(self, directory: Path) -> None:
        try:
            directory.mkdir(parents=True, exist_ok=True)
            self.sink_path = directory / SINK_FILENAME
            self.sink = open(self.sink_path, "a", encoding="utf-8")
        except OSError as exc:  # the log must never break the service
            self.sink = None
            self.sink_path = None
            _log.warning("access.sink.open_failed", directory=str(directory),
                         error=type(exc).__name__)

    def _close_sink(self) -> None:
        if self.sink is not None:
            try:
                self.sink.close()
            except OSError:
                pass
        self.sink = None
        self.sink_path = None


_STATE = _AccessState()


def enable_access_log(directory: Optional[os.PathLike] = None) -> None:
    """Turn the access log on, appending to ``<directory>/access.jsonl``
    (``.repro/access/`` when no directory is given)."""
    with _STATE.lock:
        _STATE._close_sink()
        root = Path(directory) if directory is not None \
            else Path(DEFAULT_ACCESS_DIR)
        _STATE._open_sink(root)
        _STATE.enabled = _STATE.sink is not None


def disable_access_log() -> None:
    """Turn the access log off and close the sink."""
    with _STATE.lock:
        _STATE.enabled = False
        _STATE._close_sink()


def access_log_enabled() -> bool:
    """True while :func:`log_request` is recording request lines."""
    with _STATE.lock:
        return _STATE.enabled


def access_log_path() -> Optional[Path]:
    """The JSONL file request lines are appended to (None while off)."""
    with _STATE.lock:
        return _STATE.sink_path


def log_request(
    trace_id: Optional[str],
    method: str,
    endpoint: str,
    status: int,
    error_code: Optional[str],
    latency_s: float,
    cache_hit: Optional[bool] = None,
    inflight: int = 0,
) -> Optional[Dict[str, Any]]:
    """Append one ``repro.obs/access/v1`` line; no-op while disabled.

    Returns the record dict when written (None while off), so the serve
    layer's tests can assert on exactly what was logged.
    """
    # Deliberate benign race: a stale read of the boolean switch costs
    # one line around enable/disable, and keeps the disabled-path
    # overhead to a single attribute load (the obs cost contract).
    if not _STATE.enabled:  # repro: noqa[LCK001]
        return None
    record: Dict[str, Any] = {
        "schema": ACCESS_SCHEMA,
        "ts": time(),
        "trace_id": trace_id,
        "method": method,
        "endpoint": endpoint,
        "status": status,
        "error_code": error_code,
        "latency_s": latency_s,
        "cache_hit": cache_hit,
        "inflight": inflight,
    }
    with _metrics.timer("access.append.seconds"), _STATE.lock:
        if not _STATE.enabled or _STATE.sink is None:
            return None
        try:
            _STATE.sink.write(json.dumps(record, sort_keys=True) + "\n")
            _STATE.sink.flush()
        except (OSError, ValueError) as exc:
            _metrics.counter("access.sink_errors.count").inc()
            _log.warning("access.sink.write_failed", error=type(exc).__name__)
            _STATE._close_sink()
            return None
    _metrics.counter("access.lines.count").inc()
    return record


def read_access(path: os.PathLike) -> List[Dict[str, Any]]:
    """Parse an access-log JSONL file (or a directory containing
    ``access.jsonl``), tolerating a torn trailing line.

    Corrupt lines are skipped and counted in
    ``access.read.corrupt_lines.count`` — the sink is append-only, so a
    torn tail is expected while the service is live.
    """
    with _metrics.timer("access.read.seconds"):
        target = Path(path)
        if target.is_dir():
            target = target / SINK_FILENAME
        records: List[Dict[str, Any]] = []
        try:
            lines = target.read_text(encoding="utf-8").splitlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                _metrics.counter("access.read.corrupt_lines.count").inc()
                continue
            if isinstance(record, dict):
                records.append(record)
    return records
