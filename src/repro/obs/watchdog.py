"""Perf-regression watchdog over the benchmark history trajectory.

``tools/bench_smoke.py --write`` appends one history entry per git
revision to ``BENCH_KERNELS.json`` (schema v2); this module is the
comparator that turns that history into an alarm: a tracked hot path is
flagged when its current wall-clock exceeds the **trailing median** of
its history by more than a configurable ratio (default
:data:`DEFAULT_RATIO` = 1.5×).  The median — not the last value — is the
baseline, so one noisy run neither hides nor fakes a regression.

Entry points:

* :func:`check` — compare a ``{case: seconds}`` dict against history
  entries; returns a :class:`WatchReport`;
* :func:`watch_file` — compare the newest committed history entry (or a
  live timing dict) against its trailing history, optionally pinning the
  baseline to one revision (``against="abc1234"``);
* ``python -m repro.obs.watchdog`` / ``repro-defender watch`` /
  ``make bench-watch`` — the CLI faces, non-fatal by default
  (``--strict`` makes regressions exit non-zero).

Schema helpers (:func:`migrate_history`, :func:`load_history_document`)
live here too so ``tools/bench_smoke.py`` and the tests share one
migration path from the v1 single-snapshot file.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Any, Dict, List, Optional

import repro.obs.metrics as _metrics
from repro.obs.log import get_logger

__all__ = [
    "DEFAULT_RATIO",
    "DEFAULT_WINDOW",
    "SCHEMA_V1",
    "SCHEMA_V2",
    "Regression",
    "WatchReport",
    "migrate_history",
    "load_history_document",
    "check",
    "watch_file",
]

_log = get_logger("repro.obs.watchdog")

SCHEMA_V1 = "repro.kernels/bench-smoke/v1"
SCHEMA_V2 = "repro.kernels/bench-smoke/v2"

#: Flag a case when current > trailing-median * DEFAULT_RATIO.
DEFAULT_RATIO = 1.5

#: Trailing history entries considered per case (newest first).
DEFAULT_WINDOW = 20


class Regression:
    """One tracked case that blew past its trailing-median budget."""

    __slots__ = ("case", "current_s", "baseline_s", "ratio", "limit_s",
                 "samples")

    def __init__(self, case: str, current_s: float, baseline_s: float,
                 ratio: float, samples: int) -> None:
        self.case = case
        self.current_s = current_s
        self.baseline_s = baseline_s
        self.ratio = ratio
        self.limit_s = baseline_s * ratio
        self.samples = samples

    def describe(self) -> str:
        return (
            f"{self.case}: {self.current_s:.3f}s is "
            f"{self.current_s / self.baseline_s:.2f}x the trailing median "
            f"{self.baseline_s:.3f}s over {self.samples} runs "
            f"(limit {self.ratio:.2f}x = {self.limit_s:.3f}s)"
        )

    def __repr__(self) -> str:
        return f"Regression({self.describe()})"


class WatchReport:
    """Outcome of one watchdog pass over the tracked cases."""

    __slots__ = ("regressions", "checked", "skipped", "baseline_label")

    def __init__(self, regressions: List[Regression], checked: List[str],
                 skipped: List[str], baseline_label: str) -> None:
        self.regressions = regressions
        self.checked = checked
        self.skipped = skipped
        self.baseline_label = baseline_label

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable verdict (the ``watch --format json`` body)."""
        return {
            "schema": "repro.obs/watch-report/v1",
            "ok": self.ok,
            "baseline": self.baseline_label,
            "checked": list(self.checked),
            "skipped": list(self.skipped),
            "regressions": [
                {
                    "case": r.case,
                    "current_s": r.current_s,
                    "baseline_s": r.baseline_s,
                    "ratio": r.ratio,
                    "limit_s": r.limit_s,
                    "samples": r.samples,
                }
                for r in self.regressions
            ],
        }

    def summary(self) -> str:
        lines = [
            f"bench-watch vs {self.baseline_label}: "
            f"{len(self.checked)} cases checked, "
            f"{len(self.skipped)} without history, "
            f"{len(self.regressions)} regressions"
        ]
        for regression in self.regressions:
            lines.append(f"  REGRESSION {regression.describe()}")
        for case in self.skipped:
            lines.append(f"  (no trailing history for {case})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"WatchReport(ok={self.ok}, checked={len(self.checked)}, "
            f"regressions={len(self.regressions)})"
        )


# --------------------------------------------------------------------------
# schema / migration


def migrate_history(document: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade a v1 single-snapshot bench document to schema v2 in memory.

    The v1 ``cases`` snapshot becomes the first (and only) history entry,
    labelled ``pre-history`` because v1 never recorded the revision that
    produced it.  v2 documents pass through unchanged; anything else
    raises ``ValueError``.
    """
    schema = document.get("schema")
    if schema == SCHEMA_V2:
        return document
    if schema != SCHEMA_V1:
        raise ValueError(f"unrecognized bench document schema: {schema!r}")
    with _metrics.timer("watchdog.migrate.seconds"):
        cases = document.get("cases", {})
        migrated = {
            "schema": SCHEMA_V2,
            "slack": document.get("slack", {}),
            "cases": cases,
            "history": [{
                "git_rev": "pre-history",
                "timestamp": None,
                "cases": {
                    name: entry.get("wall_clock_s")
                    for name, entry in sorted(cases.items())
                    if isinstance(entry, dict)
                },
            }],
        }
    return migrated


def load_history_document(path) -> Dict[str, Any]:
    """Read ``path`` and return it as a schema-v2 document (migrating v1)."""
    return migrate_history(json.loads(Path(path).read_text(encoding="utf-8")))


# --------------------------------------------------------------------------
# the comparator


def _case_history(history: List[Dict[str, Any]], case: str,
                  window: int) -> List[float]:
    values = [
        float(entry["cases"][case])
        for entry in history
        if isinstance(entry.get("cases"), dict)
        and entry["cases"].get(case) is not None
    ]
    return values[-window:]


def check(
    history: List[Dict[str, Any]],
    current: Dict[str, float],
    ratio: float = DEFAULT_RATIO,
    window: int = DEFAULT_WINDOW,
    baseline_label: str = "trailing median",
) -> WatchReport:
    """Compare ``current`` timings against the trailing history median.

    ``history`` is a list of v2 history entries (oldest first), each
    ``{"git_rev", "timestamp", "cases": {name: seconds}}``.  A case with
    no history at all is *skipped* (reported, never fatal) — the watchdog
    only ever compares against evidence.
    """
    with _metrics.timer("watchdog.check.seconds"):
        regressions: List[Regression] = []
        checked: List[str] = []
        skipped: List[str] = []
        for case in sorted(current):
            seconds = current[case]
            if seconds is None:
                continue
            values = _case_history(history, case, window)
            if not values:
                skipped.append(case)
                continue
            checked.append(case)
            baseline = statistics.median(values)
            if baseline > 0 and float(seconds) > baseline * ratio:
                regressions.append(
                    Regression(case, float(seconds), baseline, ratio,
                               len(values))
                )
        _metrics.counter("watchdog.checks.count").inc()
        if regressions:
            _metrics.counter("watchdog.regressions.count").inc(
                len(regressions)
            )
            for regression in regressions:
                _log.warning("watchdog.regression",
                             case=regression.case,
                             current_s=regression.current_s,
                             baseline_s=regression.baseline_s)
    return WatchReport(regressions, checked, skipped, baseline_label)


def watch_file(
    path,
    current: Optional[Dict[str, float]] = None,
    against: Optional[str] = None,
    ratio: float = DEFAULT_RATIO,
    window: int = DEFAULT_WINDOW,
) -> WatchReport:
    """Run the watchdog over a bench trajectory file.

    Without ``current``, the newest committed history entry plays the
    candidate and is compared against the *earlier* entries; pass a live
    ``{case: seconds}`` dict (what ``bench_smoke --watch`` does) to
    compare fresh timings against the whole history.  ``against`` pins
    the baseline to the single history entry with that ``git_rev``
    instead of the trailing median.
    """
    with _metrics.timer("watchdog.run.seconds"):
        document = load_history_document(path)
        history = list(document.get("history", []))
        label = f"trailing median of {Path(path).name}"
        if current is None:
            if not history:
                return WatchReport([], [], [], label)
            candidate = history[-1]
            history = history[:-1]
            current = {
                name: value
                for name, value in candidate.get("cases", {}).items()
                if value is not None
            }
            label = (
                f"history before {candidate.get('git_rev', '?')} "
                f"in {Path(path).name}"
            )
        if against is not None:
            pinned = [
                entry for entry in history if entry.get("git_rev") == against
            ]
            if not pinned:
                raise ValueError(
                    f"no history entry for revision {against!r} in {path}"
                )
            history = pinned
            label = f"revision {against}"
    return check(history, current, ratio=ratio, window=window,
                 baseline_label=label)


# --------------------------------------------------------------------------
# CLI face (python -m repro.obs.watchdog; also behind `repro-defender watch`)


def add_watch_arguments(parser) -> None:
    """Attach the watchdog flags to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "--file", default="BENCH_KERNELS.json", metavar="PATH",
        help="bench trajectory file (default: BENCH_KERNELS.json)",
    )
    parser.add_argument(
        "--against", default=None, metavar="REV",
        help="compare against this git revision's history entry instead "
             "of the trailing median",
    )
    parser.add_argument(
        "--ratio", type=float, default=DEFAULT_RATIO,
        help=f"slowdown ratio that trips the alarm (default: "
             f"{DEFAULT_RATIO})",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"trailing history entries per case (default: "
             f"{DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on regressions (default: report only)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="verdict format: human text or one JSON document for CI "
             "annotations (default: text)",
    )


def run_watch_from_args(args, emit=print) -> int:
    """Execute a parsed watchdog invocation; returns a process exit code."""
    fmt = getattr(args, "fmt", "text")
    path = Path(args.file)
    if not path.exists():
        message = (f"bench-watch: {path} missing; run tools/bench_smoke.py "
                   "--write first")
        emit(json.dumps({"schema": "repro.obs/watch-report/v1", "ok": True,
                         "error": message})
             if fmt == "json" else message)
        return 0 if not args.strict else 1
    try:
        report = watch_file(path, against=args.against, ratio=args.ratio,
                            window=args.window)
    except (ValueError, json.JSONDecodeError) as exc:
        emit(json.dumps({"schema": "repro.obs/watch-report/v1", "ok": False,
                         "error": str(exc)})
             if fmt == "json" else f"bench-watch: {exc}")
        return 1
    emit(json.dumps(report.to_dict(), indent=2, sort_keys=True)
         if fmt == "json" else report.summary())
    if not report.ok and args.strict:
        return 1
    return 0


def _main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watchdog",
        description="flag tracked hot paths slower than their trailing "
                    "history median",
    )
    add_watch_arguments(parser)
    return run_watch_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via make bench-watch
    import sys

    sys.exit(_main())
