"""Process-global metrics: counters, gauges and timing histograms.

The scaling results this library reproduces (double-oracle pool sizes,
LP matrix dimensions, simulation throughput) are *quantitative* claims,
so the solver stack needs a place to put numbers that is cheaper than
logging and richer than return values.  This module provides it:

* :class:`Counter` — monotonically increasing tallies
  (``double_oracle.iterations.count``);
* :class:`Gauge` — last-value-wins instantaneous readings
  (``simulation.trials_per_sec``);
* :class:`Histogram` — streaming distributions with nearest-rank
  percentiles (``lp.solve.seconds`` p50/p95/max);
* :class:`MetricsRegistry` — a named collection of the above,
  snapshot-able to a plain dict and exportable as JSON or
  Prometheus-style text.

A process-global registry (:func:`get_registry`) backs the module-level
helpers :func:`counter` / :func:`gauge` / :func:`histogram` /
:func:`timer`, which is what the instrumented hot paths call.  Metric
names follow the ``component.operation.unit`` convention documented in
``docs/observability.md``.

Everything here is stdlib-only and cheap: recording a counter is a
dict lookup plus a float add, and a histogram observation appends to a
bounded sample buffer (deterministic stride decimation past
``Histogram.MAX_SAMPLES`` — no RNG, so benchmark runs stay
reproducible).
"""

from __future__ import annotations

import json
import math
import threading
from time import perf_counter
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "render_snapshot",
]


class Counter:
    """A monotonically increasing tally.

    Examples
    --------
    >>> c = Counter("demo.count")
    >>> c.inc(); c.inc(2); c.value
    3.0
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the tally."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current reading."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A streaming distribution with nearest-rank percentiles.

    Tracks exact ``count`` / ``total`` / ``min`` / ``max`` for every
    observation.  Percentiles are computed over a sample buffer that is
    decimated deterministically (keep every other sample, double the
    recording stride) once it reaches :data:`MAX_SAMPLES`, so memory
    stays bounded without randomness.
    """

    MAX_SAMPLES = 8192

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_stride", "_pending")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) >= self.MAX_SAMPLES:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        """Exact mean over all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` (in [0, 100]) over the samples.

        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]; got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.6g})"


class Timer:
    """Context manager that times a block into a :class:`Histogram`.

    >>> registry = MetricsRegistry()
    >>> with registry.timer("demo.seconds"):
    ...     pass
    >>> registry.histogram("demo.seconds").count
    1
    """

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = perf_counter() - self._start
        self._histogram.observe(self.elapsed)
        return False


def _prometheus_name(name: str) -> str:
    """Sanitize a dotted metric name for the Prometheus exposition format."""
    return "repro_" + "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    All accessors are get-or-create and thread-safe; instruments are
    returned by reference so hot paths can cache them.  ``snapshot()``
    freezes the registry into a plain nested dict; ``to_json()`` /
    ``to_prometheus()`` serialize that snapshot.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # The get-or-create fast paths read the dict without the lock on
    # purpose: a hit never mutates, CPython dict reads are atomic, and a
    # racy miss just falls through to the locked setdefault.

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        try:
            return self._counters[name]  # repro: noqa[LCK001]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        try:
            return self._gauges[name]  # repro: noqa[LCK001]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        try:
            return self._histograms[name]  # repro: noqa[LCK001]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram(name))

    def timer(self, name: str) -> Timer:
        """A context manager timing its block into histogram ``name``."""
        return Timer(self.histogram(name))

    def reset(self) -> None:
        """Drop every instrument (used between benchmark sessions)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __iter__(self) -> Iterator[str]:
        # Snapshot the names under the lock, iterate outside it, so a
        # loop body that calls get-or-create accessors cannot deadlock.
        with self._lock:
            names = (sorted(self._counters) + sorted(self._gauges)
                     + sorted(self._histograms))
        return iter(names)

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))

    def snapshot(self) -> Dict[str, Dict]:
        """Freeze the registry into a plain, JSON-ready nested dict."""
        with self._lock:
            counters = {
                name: c.value for name, c in sorted(self._counters.items())
            }
            gauges = {
                name: g.value for name, g in sorted(self._gauges.items())
            }
            histogram_objs = sorted(self._histograms.items())
        histograms = {}
        for name, h in histogram_objs:
            histograms[name] = {
                "count": h.count,
                "total": h.total,
                "mean": h.mean,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
                "p50": h.percentile(50),
                "p95": h.percentile(95),
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot serialized as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus-style exposition text.

        Dotted names become ``repro_``-prefixed underscore names;
        histograms emit ``_count`` / ``_sum`` series plus ``quantile``
        -labelled samples for p50/p95 and the max.
        """
        lines: List[str] = []
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value:g}")
        for name, value in snap["gauges"].items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value:g}")
        for name, stats in snap["histograms"].items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} summary")
            lines.append(f'{metric}{{quantile="0.5"}} {stats["p50"]:g}')
            lines.append(f'{metric}{{quantile="0.95"}} {stats["p95"]:g}')
            lines.append(f'{metric}{{quantile="1"}} {stats["max"]:g}')
            lines.append(f"{metric}_count {stats['count']:g}")
            lines.append(f"{metric}_sum {stats['total']:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def render_snapshot(snapshot: Dict[str, Dict]) -> str:
    """Human-readable text rendering of a :meth:`MetricsRegistry.snapshot`.

    One aligned line per instrument; histograms show count/mean/p50/p95/max.
    """
    rows: List[tuple] = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append((name, "counter", f"{value:g}"))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append((name, "gauge", f"{value:g}"))
    for name, stats in snapshot.get("histograms", {}).items():
        rows.append((
            name,
            "histogram",
            (
                f"count={stats['count']:g} mean={stats['mean']:.6g} "
                f"p50={stats['p50']:.6g} p95={stats['p95']:.6g} "
                f"max={stats['max']:.6g}"
            ),
        ))
    if not rows:
        return "(no metrics recorded)"
    rows.sort()
    width_name = max(len(r[0]) for r in rows)
    width_kind = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{name.ljust(width_name)}  {kind.ljust(width_kind)}  {value}"
        for name, kind, value in rows
    )


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the instrumented hot paths feed."""
    return _GLOBAL_REGISTRY


def counter(name: str) -> Counter:
    """Get or create ``name`` on the process-global registry."""
    return _GLOBAL_REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create ``name`` on the process-global registry."""
    return _GLOBAL_REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get or create ``name`` on the process-global registry."""
    return _GLOBAL_REGISTRY.histogram(name)


def timer(name: str) -> Timer:
    """Time a block into histogram ``name`` on the global registry."""
    return _GLOBAL_REGISTRY.timer(name)
