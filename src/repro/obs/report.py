"""Ledger analytics and self-contained HTML run reports.

The ledger (:mod:`repro.obs.ledger`) accumulates one JSONL record per
wrapped run; this module turns those records into answers:

* :func:`aggregate_runs` — group records by entry point, solver, game
  fingerprint or git revision and compute count, error rate and latency
  percentiles (nearest-rank p50/p95) per group;
* :func:`metric_trends` — per-entry-point trends across records, oldest
  first (durations plus selected convergence gauges: the double-oracle
  certified gap, the fictitious-play residual);
* :func:`rev_deltas` — duration deltas between consecutive git
  revisions, the "did this PR slow solve X down" query;
* :func:`render_report_html` / :func:`render_report_markdown` — a
  **self-contained** HTML report (one file, inline CSS and inline SVG
  sparklines, light/dark via CSS custom properties, no external
  resources) and its markdown twin;
* :func:`write_report` — the one-call face behind
  ``repro-defender ledger report``: read a ledger directory, fold in the
  watchdog trajectory from ``BENCH_KERNELS.json`` when present, fold in
  an SLO report (``repro.obs/slo-report/v1``, see :mod:`repro.obs.slo`)
  when given one, write both renderings.

Everything here is read-only over the ledger files and pure stdlib.
"""

from __future__ import annotations

import html
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.obs.metrics as _metrics
from repro.obs.ledger import read_runs
from repro.obs.log import get_logger

__all__ = [
    "GROUP_KEYS",
    "aggregate_runs",
    "metric_trends",
    "rev_deltas",
    "render_report_html",
    "render_report_markdown",
    "write_report",
]

_log = get_logger("repro.obs.report")

#: Supported ``group_by`` dimensions for :func:`aggregate_runs`.
GROUP_KEYS = ("entry_point", "solver", "fingerprint", "git_rev")

#: Convergence gauges surfaced as trends when present in run metrics.
_CONVERGENCE_GAUGES = (
    ("double_oracle.gap", "double-oracle certified gap"),
    ("fictitious_play.residual", "fictitious-play residual"),
)


def _group_key(record: Dict[str, Any], group_by: str) -> str:
    if group_by == "entry_point":
        return str(record.get("entry_point", "?"))
    if group_by == "solver":
        entry = str(record.get("entry_point", "?"))
        return entry.split(".", 1)[1] if entry.startswith("solvers.") \
            else entry
    if group_by == "fingerprint":
        sha = (record.get("fingerprint") or {}).get("sha256", "")
        return sha[:12] if sha else "(no fingerprint)"
    if group_by == "git_rev":
        return str((record.get("env") or {}).get("git_rev", "unknown"))
    raise ValueError(
        f"unknown group_by {group_by!r}; expected one of {GROUP_KEYS}"
    )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return float(sorted_values[int(rank) - 1])


def aggregate_runs(
    records: Sequence[Dict[str, Any]], group_by: str = "entry_point"
) -> List[Dict[str, Any]]:
    """Aggregate ledger records along one :data:`GROUP_KEYS` dimension.

    Returns one dict per group, sorted by key: ``{"key", "count",
    "errors", "error_rate", "duration_s": {"p50", "p95", "mean", "min",
    "max"}}``.
    """
    with _metrics.timer("report.aggregate.seconds"):
        groups: Dict[str, List[Dict[str, Any]]] = {}
        for record in records:
            groups.setdefault(_group_key(record, group_by), []).append(record)
        rows = []
        for key in sorted(groups):
            members = groups[key]
            durations = sorted(
                float(r.get("duration_s", 0.0)) for r in members
            )
            errors = sum(1 for r in members if r.get("status") == "error")
            rows.append({
                "key": key,
                "count": len(members),
                "errors": errors,
                "error_rate": errors / len(members),
                "duration_s": {
                    "p50": _percentile(durations, 50),
                    "p95": _percentile(durations, 95),
                    "mean": sum(durations) / len(durations),
                    "min": durations[0],
                    "max": durations[-1],
                },
            })
    return rows


def _gauge(record: Dict[str, Any], name: str) -> Optional[float]:
    value = ((record.get("metrics") or {}).get("gauges") or {}).get(name)
    return float(value) if isinstance(value, (int, float)) else None


def metric_trends(
    records: Sequence[Dict[str, Any]],
) -> Dict[str, Dict[str, List[float]]]:
    """Per-entry-point value series across records, oldest first.

    Returns ``{entry_point: {"duration_s": [...], <gauge>: [...]}}`` —
    the series the report's sparklines draw.  Convergence gauges are
    included only for entry points whose records carry them.
    """
    with _metrics.timer("report.trends.seconds"):
        trends: Dict[str, Dict[str, List[float]]] = {}
        ordered = sorted(records, key=lambda r: r.get("started_at", 0.0))
        for record in ordered:
            entry = str(record.get("entry_point", "?"))
            series = trends.setdefault(entry, {"duration_s": []})
            series["duration_s"].append(float(record.get("duration_s", 0.0)))
            for gauge_name, _ in _CONVERGENCE_GAUGES:
                value = _gauge(record, gauge_name)
                if value is not None:
                    series.setdefault(gauge_name, []).append(value)
    return trends


def rev_deltas(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Mean-duration deltas between consecutive git revisions.

    Revisions are ordered by the earliest run recorded under each; one
    row per (entry point, rev -> next rev) transition with the mean
    duration on both sides and the relative change.
    """
    with _metrics.timer("report.rev_deltas.seconds"):
        first_seen: Dict[str, float] = {}
        by_rev_entry: Dict[Tuple[str, str], List[float]] = {}
        for record in records:
            rev = str((record.get("env") or {}).get("git_rev", "unknown"))
            entry = str(record.get("entry_point", "?"))
            started = float(record.get("started_at", 0.0))
            if rev not in first_seen or started < first_seen[rev]:
                first_seen[rev] = started
            by_rev_entry.setdefault((rev, entry), []).append(
                float(record.get("duration_s", 0.0))
            )
        revs = sorted(first_seen, key=lambda r: first_seen[r])
        deltas = []
        for prev, curr in zip(revs, revs[1:]):
            entries = sorted({
                entry for rev, entry in by_rev_entry if rev in (prev, curr)
            })
            for entry in entries:
                a = by_rev_entry.get((prev, entry))
                b = by_rev_entry.get((curr, entry))
                if not a or not b:
                    continue
                mean_a = sum(a) / len(a)
                mean_b = sum(b) / len(b)
                deltas.append({
                    "entry_point": entry,
                    "rev_a": prev,
                    "rev_b": curr,
                    "mean_a_s": mean_a,
                    "mean_b_s": mean_b,
                    "delta_s": mean_b - mean_a,
                    "ratio": (mean_b / mean_a) if mean_a > 0 else None,
                })
    return deltas


# --------------------------------------------------------------------------
# rendering


def _sparkline_svg(values: Sequence[float], width: int = 140,
                   height: int = 28) -> str:
    """One inline-SVG sparkline polyline (series color via CSS token)."""
    if len(values) < 2:
        values = list(values) * 2 if values else [0.0, 0.0]
    low, high = min(values), max(values)
    spread = (high - low) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - low) / spread * (height - 2 * pad):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend of {len(values)} values">'
        f'<polyline points="{points}" fill="none" '
        'stroke="var(--series-1)" stroke-width="2" '
        'stroke-linejoin="round" stroke-linecap="round"/></svg>'
    )


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


_REPORT_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --series-1: #2a78d6;
  --status-good: #0ca30c;
  --status-critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #2c2c2a;
    --series-1: #3987e5;
    --border: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --grid: #2c2c2a;
  --series-1: #3987e5;
  --border: rgba(255,255,255,0.10);
}
body {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px; line-height: 1.45;
}
main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.kpis { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.kpi {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.kpi .v { font-size: 26px; font-weight: 600; }
.kpi .l { color: var(--text-secondary); font-size: 12px; }
table {
  border-collapse: collapse; width: 100%;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; font-size: 13px;
}
th, td {
  text-align: left; padding: 6px 10px;
  border-bottom: 1px solid var(--grid);
}
th { color: var(--text-secondary); font-weight: 600; }
td.num { font-variant-numeric: tabular-nums; text-align: right; }
th.num { text-align: right; }
tr:last-child td { border-bottom: none; }
.spark { display: block; }
.status { font-weight: 600; }
.status.ok { color: var(--status-good); }
.status.regressed { color: var(--status-critical); }
footer { color: var(--muted); font-size: 12px; margin-top: 28px; }
"""


def _kpi(value: str, label: str) -> str:
    return (f'<div class="kpi"><div class="v">{html.escape(value)}</div>'
            f'<div class="l">{html.escape(label)}</div></div>')


def _latency_table(rows: List[Dict[str, Any]],
                   trends: Dict[str, Dict[str, List[float]]]) -> str:
    cells = [
        "<table><thead><tr><th>entry point</th>"
        '<th class="num">runs</th><th class="num">errors</th>'
        '<th class="num">p50</th><th class="num">p95</th>'
        "<th>latency trend</th></tr></thead><tbody>"
    ]
    for row in rows:
        series = trends.get(row["key"], {}).get("duration_s", [])
        cells.append(
            f"<tr><td>{html.escape(row['key'])}</td>"
            f'<td class="num">{row["count"]}</td>'
            f'<td class="num">{row["errors"]}</td>'
            f'<td class="num">{_fmt_s(row["duration_s"]["p50"])}</td>'
            f'<td class="num">{_fmt_s(row["duration_s"]["p95"])}</td>'
            f"<td>{_sparkline_svg(series)}</td></tr>"
        )
    cells.append("</tbody></table>")
    return "".join(cells)


def _convergence_section(
    trends: Dict[str, Dict[str, List[float]]],
) -> str:
    rows = []
    for gauge_name, label in _CONVERGENCE_GAUGES:
        for entry in sorted(trends):
            values = trends[entry].get(gauge_name)
            if not values:
                continue
            rows.append(
                f"<tr><td>{html.escape(entry)}</td>"
                f"<td>{html.escape(label)}</td>"
                f'<td class="num">{values[-1]:.3g}</td>'
                f"<td>{_sparkline_svg(values)}</td></tr>"
            )
    if not rows:
        return "<p class='sub'>No convergence gauges recorded.</p>"
    return (
        "<table><thead><tr><th>entry point</th><th>gauge</th>"
        '<th class="num">latest</th><th>trend across runs</th></tr>'
        "</thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _watchdog_section(watchdog_doc: Optional[Dict[str, Any]]) -> str:
    if not watchdog_doc:
        return "<p class='sub'>No benchmark trajectory file available.</p>"
    history = [
        entry for entry in watchdog_doc.get("history", [])
        if isinstance(entry.get("cases"), dict)
    ]
    cases = sorted({
        name for entry in history for name in entry["cases"]
    })
    if not cases:
        return "<p class='sub'>Benchmark trajectory has no history.</p>"
    rows = []
    for case in cases:
        values = [
            float(entry["cases"][case]) for entry in history
            if entry["cases"].get(case) is not None
        ]
        if not values:
            continue
        trailing = sorted(values[:-1]) or values
        median = _percentile(trailing, 50)
        regressed = median > 0 and values[-1] > median * 1.5
        status = (
            '<span class="status regressed">&#9650; regressed</span>'
            if regressed else '<span class="status ok">&#10003; ok</span>'
        )
        rows.append(
            f"<tr><td>{html.escape(case)}</td>"
            f'<td class="num">{_fmt_s(values[-1])}</td>'
            f'<td class="num">{_fmt_s(median)}</td>'
            f"<td>{_sparkline_svg(values)}</td><td>{status}</td></tr>"
        )
    return (
        "<table><thead><tr><th>benchmark case</th>"
        '<th class="num">latest</th><th class="num">trailing median</th>'
        "<th>timing history</th><th>watchdog</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table>"
    )


def _slo_section_html(slo_report: Optional[Dict[str, Any]]) -> str:
    results = (slo_report or {}).get("results") or []
    if not results:
        return ("<p class='sub'>No SLO report — pass an access log and "
                "objectives (<code>--slo-config</code>) to evaluate "
                "budgets.</p>")
    rows = []
    for res in results:
        breached = bool(res.get("breached"))
        status = (
            '<span class="status regressed">&#9650; breach</span>'
            if breached else '<span class="status ok">&#10003; ok</span>'
        )
        burn = res.get("burn_rate")
        target = (res.get("objective") or {}).get("latency_p95_s")
        rows.append(
            f"<tr><td>{html.escape(str(res.get('name', '?')))}</td>"
            f"<td>{html.escape(str(res.get('endpoint', '*')))}</td>"
            f'<td class="num">{int(res.get("requests", 0))}</td>'
            f'<td class="num">{float(res.get("error_rate", 0.0)) * 100:.2f}%'
            "</td>"
            f'<td class="num">'
            f'{"-" if burn is None else f"{float(burn):.2f}x"}</td>'
            f'<td class="num">{_fmt_s(float(res.get("latency_p95_s", 0.0)))}'
            "</td>"
            f'<td class="num">'
            f'{"-" if target is None else _fmt_s(float(target))}</td>'
            f"<td>{status}</td></tr>"
        )
    return (
        "<table><thead><tr><th>objective</th><th>endpoint</th>"
        '<th class="num">requests</th><th class="num">error rate</th>'
        '<th class="num">burn rate</th><th class="num">p95</th>'
        '<th class="num">target p95</th><th>status</th></tr></thead>'
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )


def render_report_html(
    records: Sequence[Dict[str, Any]],
    watchdog_doc: Optional[Dict[str, Any]] = None,
    title: str = "repro-defender run report",
    slo_report: Optional[Dict[str, Any]] = None,
) -> str:
    """Render ledger records as one self-contained HTML document.

    No external resources: styles are inline CSS custom properties
    (light and dark), charts are inline SVG sparklines.  ``watchdog_doc``
    is a parsed ``BENCH_KERNELS.json`` (schema v2) folded into a
    benchmark-history section when given; ``slo_report`` is an evaluated
    ``repro.obs/slo-report/v1`` document (:func:`repro.obs.slo
    .evaluate_slos`) rendered as a service-level-objective panel.
    """
    with _metrics.timer("report.render_html.seconds"):
        rows = aggregate_runs(records, group_by="entry_point")
        trends = metric_trends(records)
        revs = aggregate_runs(records, group_by="git_rev")
        total = sum(r["count"] for r in rows)
        errors = sum(r["errors"] for r in rows)
        fingerprints = len({
            (r.get("fingerprint") or {}).get("sha256")
            for r in records
            if (r.get("fingerprint") or {}).get("sha256")
        })
        deltas = rev_deltas(records)
        delta_rows = "".join(
            f"<tr><td>{html.escape(d['entry_point'])}</td>"
            f"<td>{html.escape(d['rev_a'])} &#8594; "
            f"{html.escape(d['rev_b'])}</td>"
            f'<td class="num">{_fmt_s(d["mean_a_s"])}</td>'
            f'<td class="num">{_fmt_s(d["mean_b_s"])}</td>'
            f'<td class="num">{d["delta_s"]:+.3f} s</td></tr>'
            for d in deltas
        )
        delta_table = (
            "<table><thead><tr><th>entry point</th><th>revisions</th>"
            '<th class="num">mean before</th><th class="num">mean after</th>'
            '<th class="num">delta</th></tr></thead><tbody>'
            + delta_rows + "</tbody></table>"
        ) if delta_rows else (
            "<p class='sub'>Only one git revision in the ledger — "
            "no cross-revision deltas yet.</p>"
        )
        document = f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_REPORT_CSS}</style>
</head>
<body>
<main>
<h1>{html.escape(title)}</h1>
<p class="sub">Aggregated from {total} ledger record{"s" if total != 1 else ""}
across {len(rows)} entry point{"s" if len(rows) != 1 else ""} and
{len(revs)} git revision{"s" if len(revs) != 1 else ""}.</p>
<div class="kpis">
{_kpi(str(total), "runs recorded")}
{_kpi(f"{(errors / total * 100) if total else 0.0:.1f}%", "error rate")}
{_kpi(str(fingerprints), "distinct games")}
{_kpi(str(len(revs)), "git revisions")}
</div>
<h2>Latency by entry point</h2>
{_latency_table(rows, trends)}
<h2>Service-level objectives</h2>
{_slo_section_html(slo_report)}
<h2>Convergence trends</h2>
{_convergence_section(trends)}
<h2>Cross-revision duration deltas</h2>
{delta_table}
<h2>Benchmark watchdog history</h2>
{_watchdog_section(watchdog_doc)}
<footer>Generated by repro-defender ledger report &middot;
schema repro.obs/ledger-report/v1 &middot; self-contained (inline CSS + SVG,
no external resources).</footer>
</main>
</body>
</html>
"""
    return document


def render_report_markdown(
    records: Sequence[Dict[str, Any]],
    watchdog_doc: Optional[Dict[str, Any]] = None,
    title: str = "repro-defender run report",
    slo_report: Optional[Dict[str, Any]] = None,
) -> str:
    """The markdown twin of :func:`render_report_html` (tables, no SVG)."""
    with _metrics.timer("report.render_md.seconds"):
        rows = aggregate_runs(records, group_by="entry_point")
        total = sum(r["count"] for r in rows)
        errors = sum(r["errors"] for r in rows)
        lines = [
            f"# {title}",
            "",
            f"- runs recorded: **{total}**",
            f"- error rate: **{(errors / total * 100) if total else 0.0:.1f}%**",
            f"- entry points: **{len(rows)}**",
            "",
            "## Latency by entry point",
            "",
            "| entry point | runs | errors | p50 | p95 |",
            "|---|---:|---:|---:|---:|",
        ]
        for row in rows:
            lines.append(
                f"| {row['key']} | {row['count']} | {row['errors']} "
                f"| {_fmt_s(row['duration_s']['p50'])} "
                f"| {_fmt_s(row['duration_s']['p95'])} |"
            )
        results = (slo_report or {}).get("results") or []
        if results:
            lines += [
                "",
                "## Service-level objectives",
                "",
                "| objective | endpoint | requests | error rate "
                "| burn rate | p95 | status |",
                "|---|---|---:|---:|---:|---:|---|",
            ]
            for res in results:
                burn = res.get("burn_rate")
                lines.append(
                    f"| {res.get('name', '?')} | {res.get('endpoint', '*')} "
                    f"| {int(res.get('requests', 0))} "
                    f"| {float(res.get('error_rate', 0.0)) * 100:.2f}% "
                    f"| {'-' if burn is None else f'{float(burn):.2f}x'} "
                    f"| {_fmt_s(float(res.get('latency_p95_s', 0.0)))} "
                    f"| {'BREACH' if res.get('breached') else 'ok'} |"
                )
        deltas = rev_deltas(records)
        if deltas:
            lines += [
                "",
                "## Cross-revision duration deltas",
                "",
                "| entry point | revisions | mean before | mean after | delta |",
                "|---|---|---:|---:|---:|",
            ]
            for d in deltas:
                lines.append(
                    f"| {d['entry_point']} | {d['rev_a']} -> {d['rev_b']} "
                    f"| {_fmt_s(d['mean_a_s'])} | {_fmt_s(d['mean_b_s'])} "
                    f"| {d['delta_s']:+.3f} s |"
                )
        if watchdog_doc and watchdog_doc.get("history"):
            lines += ["", "## Benchmark watchdog",
                      "",
                      f"- history entries: "
                      f"{len(watchdog_doc.get('history', []))}"]
    return "\n".join(lines) + "\n"


def write_report(
    ledger_dir: os.PathLike,
    output_html: os.PathLike,
    output_md: Optional[os.PathLike] = None,
    bench_file: Optional[os.PathLike] = None,
    title: str = "repro-defender run report",
    slo_report: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Read a ledger directory and write the HTML (+ markdown) report.

    ``bench_file`` points at a ``BENCH_KERNELS.json`` trajectory; when it
    exists its watchdog history is folded in.  ``slo_report`` is an
    evaluated ``repro.obs/slo-report/v1`` document rendered as the SLO
    panel.  Returns a small summary dict (record/entry-point counts and
    the paths written).
    """
    with _metrics.timer("report.write.seconds"):
        records = read_runs(directory=ledger_dir)
        watchdog_doc = None
        if bench_file is not None and Path(bench_file).exists():
            from repro.obs.watchdog import load_history_document

            try:
                watchdog_doc = load_history_document(bench_file)
            except (ValueError, json.JSONDecodeError) as exc:
                _log.warning("report.bench_file.unreadable",
                             path=str(bench_file),
                             error=type(exc).__name__)
        html_text = render_report_html(records, watchdog_doc, title=title,
                                       slo_report=slo_report)
        html_path = Path(output_html)
        html_path.parent.mkdir(parents=True, exist_ok=True)
        html_path.write_text(html_text, encoding="utf-8")
        written = [str(html_path)]
        if output_md is not None:
            md_path = Path(output_md)
            md_path.parent.mkdir(parents=True, exist_ok=True)
            md_path.write_text(
                render_report_markdown(records, watchdog_doc, title=title,
                                       slo_report=slo_report),
                encoding="utf-8",
            )
            written.append(str(md_path))
        _metrics.counter("report.written.count").inc()
    return {
        "records": len(records),
        "entry_points": len({r.get("entry_point") for r in records}),
        "written": written,
    }
