"""Monte-Carlo playout engine for mixed configurations.

Equations (1)–(2) of the paper are *expectations* over the joint play of
``ν + 1`` independent mixed strategies.  This engine actually plays the
game: every trial samples a vertex for each attacker and a tuple for the
defender, scores the pure profits of Definition 2.1, and accumulates
streaming statistics.  Experiment E7 uses it to confirm the analytic
profit formulas (and hence every closed form derived from them) to within
sampling error.

Sampling is alias-free inverse-CDF over the support (supports here are
small), seeded and fully deterministic per seed.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, Tuple

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.graphs.core import Vertex
from repro.kernels.coverage import shared_oracle
from repro.obs import get_logger, metrics, tracing
from repro.simulation.estimators import RunningStat, wilson_interval

_log = get_logger("repro.simulation.engine")

__all__ = ["Sampler", "SimulationReport", "simulate"]


class Sampler:
    """Inverse-CDF sampler over a finite distribution."""

    __slots__ = ("_items", "_cumulative")

    def __init__(self, distribution: Dict) -> None:
        items = sorted(distribution.items(), key=lambda kv: repr(kv[0]))
        if not items:
            raise GameError("cannot sample from an empty distribution")
        self._items = [key for key, _ in items]
        self._cumulative = list(accumulate(p for _, p in items))

    def sample(self, rng: random.Random):
        """Draw one outcome."""
        u = rng.random() * self._cumulative[-1]
        return self._items[bisect_right(self._cumulative, u)]


class SimulationReport:
    """Aggregated outcome of a Monte-Carlo run.

    Attributes
    ----------
    trials:
        Number of complete game playouts.
    defender_profit:
        :class:`RunningStat` over the defender's per-trial catches.
    attacker_profit:
        One :class:`RunningStat` per vertex player (1 = escaped).
    catches:
        Per-attacker count of trials in which that attacker was caught.
    hit_counts:
        Per-vertex count of trials in which the defender's tuple covered
        the vertex — the empirical ``P(Hit(v))``.
    """

    __slots__ = ("trials", "defender_profit", "attacker_profit", "catches", "hit_counts")

    def __init__(self, nu: int) -> None:
        self.trials = 0
        self.defender_profit = RunningStat()
        self.attacker_profit = [RunningStat() for _ in range(nu)]
        self.catches = [0] * nu
        self.hit_counts: Dict[Vertex, int] = {}

    def catch_rate(self, i: int) -> float:
        """Empirical probability that attacker ``i`` is caught."""
        if self.trials == 0:
            raise GameError("no trials recorded")
        return self.catches[i] / self.trials

    def catch_rate_interval(self, i: int) -> Tuple[float, float]:
        """Wilson 95% interval for attacker ``i``'s catch probability."""
        return wilson_interval(self.catches[i], self.trials)

    def empirical_hit_probability(self, v: Vertex) -> float:
        """Fraction of trials in which ``v`` was covered by the defender."""
        if self.trials == 0:
            raise GameError("no trials recorded")
        return self.hit_counts.get(v, 0) / self.trials

    def __repr__(self) -> str:
        return (
            f"SimulationReport(trials={self.trials}, "
            f"defender_mean={self.defender_profit.mean:.4f})"
        )


def simulate(
    game: TupleGame,
    config: MixedConfiguration,
    trials: int = 10_000,
    seed: int = 0,
) -> SimulationReport:
    """Play ``trials`` independent rounds of ``Π_k(G)`` under ``config``.

    Returns a :class:`SimulationReport` whose means estimate the expected
    profits of equations (1)–(2).
    """
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    if trials < 1:
        raise GameError("at least one trial is required")
    rng = random.Random(seed)
    attacker_samplers = [
        Sampler(config.vp_distribution(i)) for i in range(game.nu)
    ]
    tuple_sampler = Sampler(config.tp_distribution())
    # Tuple -> covered vertex set, resolved through the shared kernel so
    # repeated runs over the same configuration reuse one precompute.
    coverage = shared_oracle(game.graph, game.k).coverage_sets(
        config.tp_support()
    )

    report = SimulationReport(game.nu)
    with tracing.span("simulation.run", trials=trials, nu=game.nu), \
            metrics.timer("simulation.run.seconds") as timing:
        for _ in range(trials):
            chosen_tuple = tuple_sampler.sample(rng)
            covered = coverage[chosen_tuple]
            for v in covered:
                report.hit_counts[v] = report.hit_counts.get(v, 0) + 1
            caught = 0
            for i, sampler in enumerate(attacker_samplers):
                vertex = sampler.sample(rng)
                if vertex in covered:
                    caught += 1
                    report.catches[i] += 1
                    report.attacker_profit[i].push(0.0)
                else:
                    report.attacker_profit[i].push(1.0)
            report.defender_profit.push(float(caught))
            report.trials += 1
    metrics.counter("simulation.runs.count").inc()
    metrics.counter("simulation.trials.count").inc(trials)
    # One defender draw plus one draw per attacker, every trial.
    metrics.counter("simulation.draws.count").inc(trials * (game.nu + 1))
    if timing.elapsed > 0.0:
        metrics.gauge("simulation.trials_per_sec").set(trials / timing.elapsed)
    _log.info(
        "simulation.finished", trials=trials,
        defender_mean=report.defender_profit.mean, seconds=timing.elapsed,
    )
    return report
