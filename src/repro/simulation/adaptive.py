"""Adaptive attackers: no-regret learning against the equilibrium defender.

The equilibria of the paper are *static* guarantees.  This module asks the
operational question a deployment cares about: if real attackers adapt
online — observing which of their probes get caught and shifting toward
vertices that historically escaped — does the randomized scan schedule of
Lemma 4.1 still hold the line?

Zero-sum learning theory says yes: against a defender playing a minimax-
optimal mixture, *no* attacker algorithm can push its long-run escape rate
above ``1 − value``; and a no-regret attacker (regret matching, Hart &
Mas-Colell 2000) converges to exactly that rate.  The simulator here plays
the repeated game so experiments can watch both facts happen:

* :func:`regret_matching_attack` — an attacker running regret matching
  over the vertices against a fixed defender mixture;
* :func:`exploit_gap` — how much better the adaptive attacker did than
  the best *static* vertex would have (non-positive in the long run
  against an equilibrium defender, strictly positive against naive
  schedules — which is the experiment that shows *why* randomization per
  Lemma 4.1 matters).
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.tuples import tuple_vertices
from repro.graphs.core import Vertex
from repro.simulation.engine import Sampler

__all__ = ["AdaptiveAttackResult", "regret_matching_attack", "exploit_gap"]


class AdaptiveAttackResult:
    """Trace of a repeated game between a learner and a fixed defender.

    Attributes
    ----------
    rounds:
        Rounds played.
    escape_rate:
        Fraction of rounds the adaptive attacker escaped.
    best_static_escape_rate:
        Escape rate of the best fixed vertex *in hindsight* against the
        defender's realized play.
    per_vertex_escapes:
        Hindsight escape counts per vertex (counterfactual: what any
        fixed choice would have earned).
    strategy:
        The learner's final empirical mixture.
    """

    __slots__ = (
        "rounds",
        "escape_rate",
        "best_static_escape_rate",
        "per_vertex_escapes",
        "strategy",
    )

    def __init__(
        self,
        rounds: int,
        escape_rate: float,
        best_static_escape_rate: float,
        per_vertex_escapes: Dict[Vertex, int],
        strategy: Dict[Vertex, float],
    ) -> None:
        self.rounds = rounds
        self.escape_rate = escape_rate
        self.best_static_escape_rate = best_static_escape_rate
        self.per_vertex_escapes = per_vertex_escapes
        self.strategy = strategy

    @property
    def regret(self) -> float:
        """Average regret vs the best static vertex (→ 0 for a learner)."""
        return self.best_static_escape_rate - self.escape_rate

    def __repr__(self) -> str:
        return (
            f"AdaptiveAttackResult(rounds={self.rounds}, "
            f"escape_rate={self.escape_rate:.4f}, regret={self.regret:.4f})"
        )


def regret_matching_attack(
    game: TupleGame,
    defender: MixedConfiguration,
    rounds: int = 5_000,
    seed: int = 0,
) -> AdaptiveAttackResult:
    """Play one regret-matching attacker against a fixed defender mixture.

    Each round the defender samples a tuple from ``defender``'s tuple
    distribution; the attacker samples a vertex proportionally to its
    positive cumulative regrets (uniform while all regrets are
    non-positive), then observes the *full* outcome (which vertices were
    covered) and updates every counterfactual regret.
    """
    if defender.game != game:
        raise GameError("defender configuration belongs to a different game")
    if rounds < 1:
        raise GameError("at least one round is required")
    rng = random.Random(seed)
    vertices: Sequence[Vertex] = game.graph.sorted_vertices()
    tuple_sampler = Sampler(defender.tp_distribution())
    coverage = {t: tuple_vertices(t) for t in defender.tp_support()}

    cumulative_regret: Dict[Vertex, float] = {v: 0.0 for v in vertices}
    play_counts: Dict[Vertex, int] = {v: 0 for v in vertices}
    hindsight_escapes: Dict[Vertex, int] = {v: 0 for v in vertices}
    escapes = 0

    for _ in range(rounds):
        positive = {v: r for v, r in cumulative_regret.items() if r > 0}
        if positive:
            total = sum(positive.values())
            pick = rng.random() * total
            acc = 0.0
            choice = vertices[-1]
            for v in vertices:
                weight = positive.get(v, 0.0)
                if weight <= 0.0:
                    continue
                acc += weight
                if pick <= acc:
                    choice = v
                    break
        else:
            choice = vertices[rng.randrange(len(vertices))]

        covered = coverage[tuple_sampler.sample(rng)]
        payoff = 0.0 if choice in covered else 1.0
        escapes += int(payoff)
        play_counts[choice] += 1
        for v in vertices:
            counterfactual = 0.0 if v in covered else 1.0
            if counterfactual:
                hindsight_escapes[v] += 1
            cumulative_regret[v] += counterfactual - payoff

    best_static = max(hindsight_escapes.values()) / rounds
    strategy = {
        v: c / rounds for v, c in play_counts.items() if c > 0
    }
    return AdaptiveAttackResult(
        rounds, escapes / rounds, best_static, hindsight_escapes, strategy
    )


def exploit_gap(result: AdaptiveAttackResult, equilibrium_value: float) -> float:
    """How far above the equilibrium escape guarantee the learner got.

    ``equilibrium_value`` is the duel value (catch probability); the
    defender's guarantee caps any attacker's escape rate at
    ``1 − value`` in expectation.  Positive return values mean the
    defender's schedule was exploitable (expected for naive schedules,
    vanishing for Lemma 4.1 mixtures).
    """
    return result.escape_rate - (1.0 - equilibrium_value)
