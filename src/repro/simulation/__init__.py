"""Monte-Carlo playout of the game, validating the analytic profit algebra,
plus adaptive (no-regret) attackers for robustness experiments."""

from repro.simulation.adaptive import (
    AdaptiveAttackResult,
    exploit_gap,
    regret_matching_attack,
)
from repro.simulation.engine import Sampler, SimulationReport, simulate
from repro.simulation.estimators import RunningStat, wilson_interval
from repro.simulation.fast import FastSimulationResult, simulate_fast

__all__ = [
    "AdaptiveAttackResult",
    "exploit_gap",
    "regret_matching_attack",
    "Sampler",
    "SimulationReport",
    "simulate",
    "RunningStat",
    "wilson_interval",
    "FastSimulationResult",
    "simulate_fast",
]
