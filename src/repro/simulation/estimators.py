"""Streaming statistics for Monte-Carlo experiments.

Plain Welford accumulation plus interval helpers — enough to attach honest
error bars to the simulated profits that validate equations (1)–(2).
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["RunningStat", "wilson_interval"]

_Z95 = 1.959963984540054
"""Two-sided 95% normal quantile."""


class RunningStat:
    """Welford's online mean/variance accumulator.

    Examples
    --------
    >>> stat = RunningStat()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     stat.push(x)
    >>> stat.mean
    2.0
    >>> round(stat.variance, 6)
    1.0
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return float("inf")
        return self.stddev / math.sqrt(self.count)

    def confidence_interval(self, z: float = _Z95) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (95% by default).

        Boundary behavior (pinned by the test suite): with no samples the
        interval is vacuous, ``(-inf, inf)``; with a single sample the
        variance estimate is 0 and the interval degenerates to the
        zero-width ``(mean, mean)``.  Neither is a usable error bar —
        callers wanting honest intervals need ``count >= 2``.
        """
        half = z * self.stderr
        return self.mean - half, self.mean + half

    def __repr__(self) -> str:
        return f"RunningStat(n={self.count}, mean={self.mean:.6f})"


def wilson_interval(successes: int, trials: int, z: float = _Z95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation near 0 and 1, which is
    where attacker catch rates live at strong equilibria.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)
