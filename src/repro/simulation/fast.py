"""Vectorized Monte-Carlo playout (numpy fast path).

The reference engine (:mod:`repro.simulation.engine`) plays one trial at
a time and tracks full per-attacker statistics; that is the right tool
for validation but tops out around 10⁵ trials/second.  For the
large-sample experiments (tight confidence intervals, tail estimates)
this module samples *all* trials at once with numpy:

* defender tuples and attacker vertices are drawn as index matrices from
  the configuration's distributions (``numpy.random.Generator.choice``);
* a precomputed 0/1 coverage matrix turns (trial, attacker) index pairs
  into catches with one fancy-indexing expression.

Same game semantics, same statistical meaning; ~two orders of magnitude
faster.  ``test_simulation_fast.py`` pins the fast path to the reference
engine (identical expectations, overlapping confidence intervals) —
seeds are *not* interchangeable across the two engines (different RNGs),
which is why the equivalence tests compare distributions, not streams.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.graphs.core import tuple_sort_key
from repro.kernels.coverage import shared_oracle
from repro.obs import metrics, tracing

__all__ = ["FastSimulationResult", "simulate_fast"]


class FastSimulationResult:
    """Aggregates of a vectorized run.

    Attributes
    ----------
    trials:
        Number of playouts.
    defender_mean / defender_std:
        Sample mean and (ddof=1) standard deviation of per-trial catches.
    catch_rates:
        Per-attacker empirical catch probabilities, in player order.
    """

    __slots__ = ("trials", "defender_mean", "defender_std", "catch_rates")

    def __init__(
        self, trials: int, defender_mean: float, defender_std: float,
        catch_rates: Tuple[float, ...],
    ) -> None:
        self.trials = trials
        self.defender_mean = defender_mean
        self.defender_std = defender_std
        self.catch_rates = catch_rates

    def defender_confidence_interval(self, z: float = 1.959963984540054):
        """Normal-approximation 95% CI for the defender's expected profit."""
        half = z * self.defender_std / np.sqrt(self.trials)
        return self.defender_mean - half, self.defender_mean + half

    def __repr__(self) -> str:
        return (
            f"FastSimulationResult(trials={self.trials}, "
            f"defender_mean={self.defender_mean:.4f})"
        )


def simulate_fast(
    game: TupleGame,
    config: MixedConfiguration,
    trials: int = 100_000,
    seed: int = 0,
) -> FastSimulationResult:
    """Play ``trials`` rounds of ``Π_k(G)`` vectorized.

    Semantically identical to :func:`repro.simulation.engine.simulate`
    (independent draws per player per trial); only the RNG stream and the
    set of statistics differ.
    """
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    if trials < 1:
        raise GameError("at least one trial is required")
    metrics.counter("simulation.fast.runs.count").inc()
    metrics.counter("simulation.fast.trials.count").inc(trials)
    with tracing.span("simulation.fast", trials=trials, nu=game.nu), \
            metrics.timer("simulation.fast.seconds"):
        return _simulate_fast(game, config, trials, seed)


def _simulate_fast(
    game: TupleGame,
    config: MixedConfiguration,
    trials: int,
    seed: int,
) -> FastSimulationResult:
    rng = np.random.default_rng(seed)

    tuples = sorted(config.tp_support(), key=tuple_sort_key)
    tuple_probs = np.array([config.prob_tp(t) for t in tuples])
    tuple_probs = tuple_probs / tuple_probs.sum()

    # Coverage matrix (tuples x vertex slots) from the shared kernel —
    # memoized, so repeated runs over one configuration skip the rebuild.
    coverage, vertex_index = shared_oracle(
        game.graph, game.k
    ).coverage_matrix(tuples)

    tuple_draws = rng.choice(len(tuples), size=trials, p=tuple_probs)

    caught = np.zeros((trials, game.nu), dtype=bool)
    for i in range(game.nu):
        dist = config.vp_distribution(i)
        support = sorted(dist, key=repr)
        probs = np.array([dist[v] for v in support])
        probs = probs / probs.sum()
        support_indices = np.array([vertex_index[v] for v in support])
        attacker_draws = support_indices[
            rng.choice(len(support), size=trials, p=probs)
        ]
        caught[:, i] = coverage[tuple_draws, attacker_draws]

    per_trial = caught.sum(axis=1).astype(float)
    return FastSimulationResult(
        trials,
        float(per_trial.mean()),
        float(per_trial.std(ddof=1)) if trials > 1 else 0.0,
        tuple(float(c) for c in caught.mean(axis=0)),
    )
