"""Command-line interface: solve defender games on graphs from disk.

Usage examples (after ``pip install -e .``)::

    repro-defender info network.edges
    repro-defender solve network.edges -k 3 --nu 5
    repro-defender pure network.edges -k 8
    repro-defender gain network.edges --nu 4 --lp
    repro-defender simulate network.edges -k 2 --nu 3 --trials 20000
    repro-defender stats network.edges -k 2 --trace
    repro-defender stats network.edges -k 2 --format prometheus -o met.prom
    repro-defender profile network.edges -k 2 --chrome-trace trace.json
    repro-defender lint --strict --baseline
    repro-defender fuzz --count 50 --seed 7 --corpus tests/corpus --replay
    repro-defender watch --file BENCH_KERNELS.json --ratio 1.5
    repro-defender tail --follow --type solver.iteration
    repro-defender ledger stats --group-by git_rev
    repro-defender ledger report -o report.html --markdown report.md
    repro-defender ledger diff 9f2c1a07 3c881b2e
    repro-defender solve network.edges -k 3 --cache
    repro-defender cache stats
    repro-defender cache lookup --solver equilibria.solve
    repro-defender cache gc --max-age 86400
    repro-defender serve --port 8400 --access-log --slo-config slo.json
    repro-defender slo check --config slo.json --access-path .repro/access
    repro-defender slo report --config slo.json --format json

Graphs are edge-list files (``u v`` per line, ``#`` comments) or ``.json``
documents — see :mod:`repro.graphs.io`.

Every subcommand accepts the observability flags ``--quiet``,
``--verbose``, ``--log-json``, ``--trace``, ``--ledger`` /
``--ledger-dir DIR``, ``--events`` / ``--events-dir DIR``,
``--access-log`` / ``--access-log-dir DIR`` and
``--cache`` / ``--cache-dir DIR`` (before
or after the subcommand); see ``docs/observability.md``.  All normal output flows
through one :func:`_emit` helper, so ``--quiet`` silences it and
``--log-json`` turns each message into a JSON line without touching the
default plain-text format.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import repro.cache as result_cache
from repro.analysis.gain import fit_slope_through_origin, gain_curve
from repro.analysis.tables import Table
from repro.core.game import GameError, TupleGame
from repro.core.profits import expected_profit_tp, hit_probability
from repro.core.pure import find_pure_nash, pure_nash_exists
from repro.equilibria.solve import NoEquilibriumFoundError, solve_game
from repro.fuzz import add_fuzz_arguments as fuzz_arguments
from repro.fuzz import run_fuzz_from_args
from repro.graphs.core import Graph, vertex_sort_key
from repro.graphs.io import load_graph
from repro.graphs.properties import is_bipartite
from repro.lint import add_lint_arguments as lint_arguments
from repro.lint import run_from_args as run_lint_from_args
from repro.matching.blossom import matching_number
from repro.matching.covers import minimum_edge_cover_size
from repro.obs import access as obs_access
from repro.obs import events as obs_events
from repro.obs import ledger as obs_ledger
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import prof as obs_prof
from repro.obs import report as obs_report
from repro.obs import tracing as obs_tracing
from repro.obs.watchdog import add_watch_arguments as watch_arguments
from repro.obs.watchdog import run_watch_from_args
from repro.simulation.engine import simulate

__all__ = ["main", "build_parser"]


class _OutputConfig:
    """Process-global CLI output switches set by :func:`main`."""

    __slots__ = ("quiet", "json_mode")

    def __init__(self) -> None:
        self.quiet = False
        self.json_mode = False


_OUTPUT = _OutputConfig()


def _emit(text: object = "", *, err: bool = False) -> None:
    """Single exit point for CLI output.

    Plain ``print`` by default (so default output is byte-identical to a
    direct print); ``--quiet`` suppresses stdout messages; ``--log-json``
    wraps every message in a one-line JSON event.  Errors (``err=True``)
    go to stderr and are never silenced.
    """
    if _OUTPUT.quiet and not err:
        return
    stream = sys.stderr if err else sys.stdout
    if _OUTPUT.json_mode:
        event = "error" if err else "output"
        print(json.dumps({"event": event, "text": str(text)}), file=stream)
    else:
        print(text, file=stream)


def _add_obs_flags(parser: argparse.ArgumentParser, default) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--quiet", action="store_true", default=default,
        help="suppress normal output (errors still print)",
    )
    group.add_argument(
        "--verbose", action="store_true", default=default,
        help="emit info-level structured logs on stderr",
    )
    group.add_argument(
        "--log-json", action="store_true", default=default,
        help="output and logs as JSON lines instead of plain text",
    )
    group.add_argument(
        "--trace", action="store_true", default=default,
        help="collect spans and print the timing trace after the command",
    )
    group.add_argument(
        "--ledger", action="store_true", default=default,
        help="record the run into the provenance ledger "
             "(.repro/ledger by default)",
    )
    group.add_argument(
        "--ledger-dir",
        default=default if default is argparse.SUPPRESS else None,
        metavar="DIR",
        help="ledger directory (implies --ledger)",
    )
    group.add_argument(
        "--events", action="store_true", default=default,
        help="publish telemetry events to the JSONL sink "
             "(.repro/events by default; stream with repro-defender tail)",
    )
    group.add_argument(
        "--events-dir",
        default=default if default is argparse.SUPPRESS else None,
        metavar="DIR",
        help="event sink directory (implies --events)",
    )
    group.add_argument(
        "--access-log", action="store_true", default=default,
        help="append one structured JSONL line per served request "
             "(.repro/access by default; only the serve command writes)",
    )
    group.add_argument(
        "--access-log-dir",
        default=default if default is argparse.SUPPRESS else None,
        metavar="DIR",
        help="access-log directory (implies --access-log)",
    )
    group.add_argument(
        "--cache", action="store_true", default=default,
        help="memoize solver results in the content-addressed cache "
             "(.repro/cache by default)",
    )
    group.add_argument(
        "--cache-dir",
        default=default if default is argparse.SUPPRESS else None,
        metavar="DIR",
        help="result-cache directory (implies --cache)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    # Subparsers copy their namespace over the top-level one (bpo-29670),
    # so the per-subcommand copies of the flags must SUPPRESS their
    # defaults or they would clobber flags given before the subcommand.
    obs_parent = argparse.ArgumentParser(add_help=False)
    _add_obs_flags(obs_parent, default=argparse.SUPPRESS)

    parser = argparse.ArgumentParser(
        prog="repro-defender",
        description=(
            "Nash equilibria of the Tuple-model network security game "
            "('The Power of the Defender', ICDCS 2006)."
        ),
    )
    _add_obs_flags(parser, default=False)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text, parents=[obs_parent])
        p.add_argument("graph", help="edge-list or .json graph file")
        return p

    add_command("info", "structural summary of a graph")

    p_pure = add_command("pure", "pure NE existence and construction")
    p_pure.add_argument("-k", type=int, required=True, help="defender power")
    p_pure.add_argument("--nu", type=int, default=1, help="number of attackers")

    p_solve = add_command("solve", "compute an equilibrium")
    p_solve.add_argument("-k", type=int, required=True)
    p_solve.add_argument("--nu", type=int, default=1)
    p_solve.add_argument("--seed", type=int, default=0)

    p_gain = add_command("gain", "defender gain vs k sweep")
    p_gain.add_argument("--nu", type=int, default=1)
    p_gain.add_argument("--lp", action="store_true", help="cross-check with exact LP")
    p_gain.add_argument("--seed", type=int, default=0)

    p_sim = add_command("simulate", "Monte-Carlo validation of an equilibrium")
    p_sim.add_argument("-k", type=int, required=True)
    p_sim.add_argument("--nu", type=int, default=1)
    p_sim.add_argument("--trials", type=int, default=10_000)
    p_sim.add_argument("--seed", type=int, default=0)

    p_report = add_command("report", "full security report for a network")
    p_report.add_argument("-k", type=int, required=True)
    p_report.add_argument("--nu", type=int, default=1)
    p_report.add_argument("--trials", type=int, default=20_000)
    p_report.add_argument("--seed", type=int, default=0)

    p_export = add_command(
        "export", "solve and write the scan schedule as a JSON document"
    )
    p_export.add_argument("-k", type=int, required=True)
    p_export.add_argument("--nu", type=int, default=1)
    p_export.add_argument("--seed", type=int, default=0)
    p_export.add_argument("-o", "--output", required=True,
                          help="path for the JSON schedule document")

    p_shapes = add_command(
        "shapes", "compare defender shapes (tuple vs path vs star)"
    )
    p_shapes.add_argument("-k", type=int, required=True)

    p_ranges = add_command(
        "ranges",
        "probe the optimal polytopes: usable attack hosts, "
        "mandatory scan links",
    )
    p_ranges.add_argument("-k", type=int, required=True)

    p_adaptive = add_command(
        "redteam", "run a no-regret red-team drill against the "
                   "equilibrium schedule"
    )
    p_adaptive.add_argument("-k", type=int, required=True)
    p_adaptive.add_argument("--rounds", type=int, default=8_000)
    p_adaptive.add_argument("--seed", type=int, default=0)

    p_stats = add_command(
        "stats", "run a traced solve and print the metrics snapshot"
    )
    p_stats.add_argument("-k", type=int, required=True)
    p_stats.add_argument("--nu", type=int, default=1)
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument(
        "--format", choices=("text", "json", "prom", "prometheus"),
        default="text", dest="fmt", help="snapshot format (default: text)",
    )
    p_stats.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the snapshot to FILE instead of stdout",
    )

    p_profile = add_command(
        "profile", "profile a solve: span aggregation plus flamegraph "
                   "and Chrome-trace export"
    )
    p_profile.add_argument("-k", type=int, required=True)
    p_profile.add_argument("--nu", type=int, default=1)
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument(
        "--chrome-trace", default=None, metavar="FILE",
        help="write a chrome://tracing / Perfetto trace_event JSON file",
    )
    p_profile.add_argument(
        "--folded", default=None, metavar="FILE",
        help="write folded stacks (flamegraph.pl / speedscope input)",
    )

    # lint takes no graph — it analyzes the source tree itself.
    p_lint = sub.add_parser(
        "lint",
        help="run the AST-based domain-invariant analyzer on the source tree",
        parents=[obs_parent],
    )
    lint_arguments(p_lint)

    # fuzz takes no graph either — it generates its own instances.
    p_fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the solver stack on random games",
        parents=[obs_parent],
    )
    fuzz_arguments(p_fuzz)

    # watch takes no graph — it compares benchmark timings to history.
    p_watch = sub.add_parser(
        "watch",
        help="check benchmark timings against their trailing-median history",
        parents=[obs_parent],
    )
    watch_arguments(p_watch)

    # tail takes no graph — it streams the telemetry event sink.
    p_tail = sub.add_parser(
        "tail",
        help="stream telemetry events from a live or finished run",
        parents=[obs_parent],
    )
    p_tail.add_argument(
        "--file", default=None, metavar="PATH",
        help="event sink file (default: <events-dir>/events.jsonl)",
    )
    p_tail.add_argument(
        "--dir", default=None, metavar="DIR", dest="tail_dir",
        help="event sink directory (default: .repro/events)",
    )
    p_tail.add_argument(
        "-f", "--follow", action="store_true",
        help="keep polling for new events until interrupted",
    )
    p_tail.add_argument(
        "--type", action="append", default=None, metavar="TYPE",
        dest="event_types",
        help="only this event type (repeatable; e.g. solver.iteration)",
    )
    p_tail.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="only the newest N events (without --follow)",
    )

    # ledger takes no graph — it queries the run-provenance ledger.
    p_ledger = sub.add_parser(
        "ledger",
        help="analytics over the run-provenance ledger: stats, queries, "
             "diffs and HTML reports",
        parents=[obs_parent],
    )
    ledger_sub = p_ledger.add_subparsers(dest="ledger_command",
                                         required=True)

    def add_ledger_command(name: str, help_text: str):
        p = ledger_sub.add_parser(name, help=help_text, parents=[obs_parent])
        p.add_argument(
            "--dir", default=obs_ledger.DEFAULT_LEDGER_DIR, metavar="DIR",
            dest="ledger_query_dir", help="ledger directory to read "
            "(default: .repro/ledger)",
        )
        return p

    p_lstats = add_ledger_command(
        "stats", "aggregate runs: count, error rate, latency percentiles"
    )
    p_lstats.add_argument(
        "--group-by", choices=obs_report.GROUP_KEYS, default="entry_point",
        help="aggregation dimension (default: entry_point)",
    )
    p_lstats.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )

    p_lquery = add_ledger_command(
        "query", "filter and list individual ledger records"
    )
    p_lquery.add_argument("--entry-point", default=None)
    p_lquery.add_argument("--status", choices=("ok", "error"), default=None)
    p_lquery.add_argument(
        "--fingerprint", default=None, metavar="SHA256",
        help="full game-fingerprint hash to match",
    )
    p_lquery.add_argument(
        "--since", type=float, default=None, metavar="UNIX_TS",
        help="runs started at or after this UNIX timestamp",
    )
    p_lquery.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="newest N matching runs",
    )
    p_lquery.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )

    p_lreport = add_ledger_command(
        "report", "render the self-contained HTML run report"
    )
    p_lreport.add_argument(
        "-o", "--output", default="report.html", metavar="FILE",
        help="HTML output path (default: report.html)",
    )
    p_lreport.add_argument(
        "--markdown", default=None, metavar="FILE",
        help="also write a markdown summary to FILE",
    )
    p_lreport.add_argument(
        "--bench-file", default="BENCH_KERNELS.json", metavar="PATH",
        help="benchmark trajectory folded into the report when present",
    )
    p_lreport.add_argument(
        "--title", default="repro-defender run report",
    )
    p_lreport.add_argument(
        "--slo-config", default=None, metavar="FILE",
        help="SLO objectives JSON folded into an SLO panel (built-in "
             "availability + latency objectives when only --access-path "
             "is given)",
    )
    p_lreport.add_argument(
        "--access-path", default=None, metavar="PATH", dest="access_path",
        help="access log (file or directory) the SLO panel is computed "
             "from (default: .repro/access when --slo-config is given)",
    )

    p_ldiff = add_ledger_command(
        "diff", "field-by-field comparison of two recorded runs"
    )
    p_ldiff.add_argument("run_id_a", help="first run id (prefix allowed)")
    p_ldiff.add_argument("run_id_b", help="second run id (prefix allowed)")
    p_ldiff.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )

    # cache takes no graph — it inspects the solve-result cache.
    p_cache = sub.add_parser(
        "cache",
        help="inspect and maintain the content-addressed solve-result "
             "cache: stats, lookup, gc",
        parents=[obs_parent],
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    def add_cache_command(name: str, help_text: str):
        p = cache_sub.add_parser(name, help=help_text, parents=[obs_parent])
        p.add_argument(
            "--dir", default=None, metavar="DIR", dest="cache_query_dir",
            help="cache directory to operate on "
                 f"(default: {result_cache.DEFAULT_CACHE_DIR})",
        )
        return p

    p_cstats = add_cache_command(
        "stats", "store totals and per-solver entry/hit breakdown"
    )
    p_cstats.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )

    p_clookup = add_cache_command(
        "lookup", "list cache entries (metadata only), newest access first"
    )
    p_clookup.add_argument(
        "key_prefix", nargs="?", default=None,
        help="only entries whose key starts with this hex prefix",
    )
    p_clookup.add_argument(
        "--solver", default=None, metavar="NAME",
        help="only entries for this solver (e.g. equilibria.solve)",
    )
    p_clookup.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="newest N entries (default: 20)",
    )
    p_clookup.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )

    p_cgc = add_cache_command(
        "gc", "evict stale entries and re-enforce the size policy"
    )
    p_cgc.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="evict entries not accessed within SECONDS (0 empties the "
             "store); omitted: only the size policy is enforced",
    )
    p_cgc.add_argument(
        "--solver", default=None, metavar="NAME",
        help="restrict age-based eviction to this solver's entries",
    )

    # serve takes no graph — clients POST canonical game JSON to it.
    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP solve service (POST /solve, /double-oracle, "
             "/fictitious-play, /ranges; GET /healthz, /metrics, /slo, "
             "/debug/events)",
        parents=[obs_parent],
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8400,
        help="bind port; 0 picks an ephemeral one (default: %(default)s)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="solver worker threads (default: %(default)s)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="requests allowed to wait beyond the running ones before "
             "429s are served (default: %(default)s)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request solver deadline; exceeding it returns 504 "
             "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--slo-config", default=None, metavar="FILE",
        help="SLO objectives JSON (repro.obs/slo-config/v1) evaluated "
             "live behind GET /slo (default: built-in availability + "
             "latency objectives)",
    )

    # slo takes no graph — it evaluates objectives over an access log.
    p_slo = sub.add_parser(
        "slo",
        help="evaluate service-level objectives over a recorded access "
             "log: burn rates, error budgets, breaches",
        parents=[obs_parent],
    )
    slo_sub = p_slo.add_subparsers(dest="slo_command", required=True)

    def add_slo_command(name: str, help_text: str):
        p = slo_sub.add_parser(name, help=help_text, parents=[obs_parent])
        p.add_argument(
            "--config", default=None, metavar="FILE",
            help="SLO objectives JSON (repro.obs/slo-config/v1); "
                 "omitted: the built-in defaults",
        )
        p.add_argument(
            "--access-path", default=obs_access.DEFAULT_ACCESS_DIR,
            metavar="PATH", dest="access_path",
            help="access log to evaluate: a JSONL file or a directory "
                 "containing access.jsonl (default: %(default)s)",
        )
        p.add_argument(
            "--now", type=float, default=None, metavar="UNIX_TS",
            help="anchor the sliding windows at this timestamp "
                 "(default: the newest access record)",
        )
        return p

    add_slo_command(
        "check",
        "exit non-zero when any objective is in breach (the CI gate)",
    )
    p_slo_report = add_slo_command(
        "report", "per-objective burn rates, budgets and p95 latencies"
    )
    p_slo_report.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )

    return parser


def _cmd_info(graph: Graph) -> int:
    rho = minimum_edge_cover_size(graph)
    table = Table(["property", "value"])
    table.add_row(["vertices (n)", graph.n])
    table.add_row(["edges (m)", graph.m])
    table.add_row(["bipartite", is_bipartite(graph)])
    table.add_row(["maximum matching ν(G)", matching_number(graph)])
    table.add_row(["minimum edge cover ρ(G)", rho])
    table.add_row(["pure NE exists iff k ≥", rho])
    _emit(table.render())
    return 0


def _cmd_pure(graph: Graph, k: int, nu: int) -> int:
    game = TupleGame(graph, k, nu)
    if not pure_nash_exists(game):
        rho = minimum_edge_cover_size(graph)
        _emit(
            f"no pure NE: k={k} < minimum edge cover ρ(G)={rho} (Theorem 3.1)"
        )
        return 1
    pure = find_pure_nash(game)
    assert pure is not None
    _emit(f"pure NE exists (Theorem 3.1); defender gain = ν = {nu}")
    _emit("defender cover: " + " ".join(f"{u}-{v}" for u, v in pure.tuple_choice))
    return 0


def _cmd_solve(graph: Graph, k: int, nu: int, seed: int) -> int:
    game = TupleGame(graph, k, nu)
    try:
        result = solve_game(game, seed=seed)
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium: {exc}")
        return 1
    _emit(f"equilibrium kind : {result.kind}")
    _emit(f"defender gain    : {result.defender_gain:.6f}")
    if result.kind == "k-matching":
        config = result.mixed
        support = sorted(config.vp_support_union(), key=vertex_sort_key)
        hit = hit_probability(config, support[0])
        _emit(f"attacker support : {support}")
        _emit(f"defender tuples  : {len(config.tp_support())}")
        _emit(f"hit probability  : {hit:.6f} (= k/ρ(G))")
    return 0


def _cmd_gain(graph: Graph, nu: int, lp: bool, seed: int) -> int:
    points = gain_curve(graph, nu, include_lp=lp, seed=seed)
    headers = ["k", "kind", "gain"] + (["lp_gain"] if lp else [])
    table = Table(headers)
    for p in points:
        row: List = [p.k, p.kind, p.gain]
        if lp:
            row.append("-" if p.lp_gain is None else p.lp_gain)
        table.add_row(row)
    _emit(table.render(title=f"defender gain vs k (nu={nu})"))
    mixed = [p for p in points if p.kind == "k-matching"]
    if mixed:
        slope = fit_slope_through_origin(mixed)
        _emit(f"fitted slope through origin: {slope:.6f} "
              f"(theory: ν/ρ = {nu / minimum_edge_cover_size(graph):.6f})")
    return 0


def _cmd_simulate(graph: Graph, k: int, nu: int, trials: int, seed: int) -> int:
    game = TupleGame(graph, k, nu)
    try:
        result = solve_game(game, seed=seed)
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium: {exc}")
        return 1
    report = simulate(game, result.mixed, trials=trials, seed=seed)
    analytic = expected_profit_tp(result.mixed)
    low, high = report.defender_profit.confidence_interval()
    _emit(f"equilibrium kind        : {result.kind}")
    _emit(f"analytic defender gain  : {analytic:.6f}")
    _emit(
        f"simulated defender gain : {report.defender_profit.mean:.6f} "
        f"(95% CI [{low:.6f}, {high:.6f}], {trials} trials)"
    )
    inside = low <= analytic <= high
    _emit(f"analytic value inside CI: {'yes' if inside else 'no'}")
    return 0


def _cmd_report(graph: Graph, k: int, nu: int, trials: int, seed: int) -> int:
    from repro.analysis.report import security_report

    try:
        _emit(security_report(graph, k, nu=nu, trials=trials, seed=seed))
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium at the operating point: {exc}")
        return 1
    return 0


def _cmd_export(graph: Graph, k: int, nu: int, seed: int, output: str) -> int:
    from pathlib import Path

    from repro.core.serialize import solve_result_to_json

    try:
        result = solve_game(TupleGame(graph, k, nu), seed=seed)
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium: {exc}")
        return 1
    Path(output).write_text(solve_result_to_json(result) + "\n")
    _emit(f"wrote {result.kind} schedule (gain {result.defender_gain:.4f}) "
          f"to {output}")
    return 0


def _cmd_shapes(graph: Graph, k: int) -> int:
    from repro.models.families import KPathFamily, KStarFamily, KTupleFamily
    from repro.models.game import GeneralizedGame

    table = Table(["family", "strategies", "duel value", "vs tuple"])
    reference = None
    for family in (KTupleFamily(k), KStarFamily(k), KPathFamily(k)):
        try:
            game = GeneralizedGame(graph, family, nu=1)
            value = game.solve_minimax().value
        except GameError as exc:
            table.add_row([family.name, "-", f"({exc})", "-"])
            continue
        if reference is None:
            reference = value
        table.add_row([
            family.name, game.strategy_count(), value,
            f"{100 * value / reference:.1f}%",
        ])
    _emit(table.render(title=f"defender shape comparison at k={k}"))
    return 0


def _cmd_ranges(graph: Graph, k: int) -> int:
    from repro.solvers.ranges import attacker_vertex_ranges, defender_edge_ranges

    game = TupleGame(graph, k, nu=1)
    attacker = attacker_vertex_ranges(game)
    defender = defender_edge_ranges(game)
    _emit(f"duel value (per attacker): {attacker.value:.6f}\n")

    v_table = Table(["host", "attack prob min", "attack prob max"])
    for v in graph.sorted_vertices():
        low, high = attacker.ranges[v]
        v_table.add_row([str(v), low, high])
    _emit(v_table.render(title="attacker probability ranges over all optima"))

    e_table = Table(["link", "scan prob min", "scan prob max"])
    for e in graph.sorted_edges():
        low, high = defender.ranges[e]
        e_table.add_row([f"{e[0]}-{e[1]}", low, high])
    _emit()
    _emit(e_table.render(title="defender marginal scan ranges over all optima"))
    mandatory = defender.required()
    if mandatory:
        _emit("\nmandatory links (positive in every optimal schedule): "
              + ", ".join(f"{u}-{v}" for u, v in mandatory))
    return 0


def _cmd_redteam(graph: Graph, k: int, rounds: int, seed: int) -> int:
    from repro.matching.covers import minimum_edge_cover_size as _rho
    from repro.simulation.adaptive import exploit_gap, regret_matching_attack

    game = TupleGame(graph, k, nu=1)
    try:
        result = solve_game(game)
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium: {exc}")
        return 1
    drill = regret_matching_attack(game, result.mixed, rounds=rounds, seed=seed)
    rho = _rho(graph)
    value = min(1.0, k / rho)
    gap = exploit_gap(drill, value)
    _emit(f"schedule            : {result.kind} equilibrium")
    _emit(f"rounds probed       : {drill.rounds}")
    _emit(f"red-team escape rate: {drill.escape_rate:.4f}")
    _emit(f"theoretical cap     : {1 - value:.4f} (1 - k/rho)")
    _emit(f"exploit gap         : {gap:+.4f}")
    verdict = "schedule holds" if gap < 0.05 else "SCHEDULE EXPLOITED"
    _emit(f"verdict             : {verdict}")
    return 0


def _cmd_stats(
    graph: Graph, k: int, nu: int, seed: int, fmt: str,
    output: Optional[str] = None,
) -> int:
    """Run a fully traced solve and print the observability snapshot."""
    obs_tracing.enable_tracing(True)
    obs_tracing.clear_trace()
    game = TupleGame(graph, k, nu)
    kind: Optional[str] = None
    gain: Optional[float] = None
    code = 0
    try:
        result = solve_game(game, seed=seed)
        kind, gain = result.kind, result.defender_gain
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium: {exc}")
        code = 1
    registry = obs_metrics.get_registry()

    def _deliver(text: str) -> None:
        if output is not None:
            from pathlib import Path

            Path(output).write_text(text.rstrip("\n") + "\n")
            _emit(f"wrote {fmt} snapshot to {output}")
        else:
            _emit(text.rstrip("\n"))

    if fmt == "json":
        _deliver(registry.to_json())
        return code
    if fmt in ("prom", "prometheus"):
        _deliver(registry.to_prometheus())
        return code
    lines: List[str] = []
    if kind is not None:
        lines.append(f"equilibrium kind : {kind}")
        lines.append(f"defender gain    : {gain:.6f}")
    lines.append("\n== trace ==")
    lines.append(obs_tracing.render_trace())
    lines.append("\n== span aggregation ==")
    lines.append(obs_prof.render_aggregate(obs_prof.aggregate()))
    lines.append("\n== metrics snapshot ==")
    lines.append(obs_metrics.render_snapshot(registry.snapshot()))
    _deliver("\n".join(lines))
    return code


def _cmd_profile(
    graph: Graph, k: int, nu: int, seed: int,
    chrome_trace: Optional[str], folded: Optional[str],
) -> int:
    """Run a traced solve and report/export the deterministic profile."""
    obs_tracing.enable_tracing(True)
    obs_tracing.clear_trace()
    game = TupleGame(graph, k, nu)
    code = 0
    try:
        result = solve_game(game, seed=seed)
        _emit(f"equilibrium kind : {result.kind}")
        _emit(f"defender gain    : {result.defender_gain:.6f}")
    except NoEquilibriumFoundError as exc:
        _emit(f"no structural equilibrium: {exc}")
        code = 1
    spans = obs_tracing.get_trace()
    _emit("\n== span aggregation (self-time hot spots first) ==")
    _emit(obs_prof.render_aggregate(obs_prof.aggregate(spans)))
    if chrome_trace is not None:
        obs_prof.write_chrome_trace(chrome_trace, spans)
        _emit(f"\nwrote Chrome trace_event JSON to {chrome_trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    if folded is not None:
        obs_prof.write_folded_stacks(folded, spans)
        _emit(f"wrote folded stacks to {folded} "
              "(flamegraph.pl / speedscope input)")
    return code


def _render_event(event: dict) -> str:
    payload = event.get("payload") or {}
    fields = " ".join(f"{key}={payload[key]}" for key in sorted(payload))
    return f"{event.get('seq', '?'):>6}  {event.get('type', '?'):16s} {fields}"


def _cmd_tail(args: argparse.Namespace) -> int:
    """Stream events from a sink file (live with --follow)."""
    from pathlib import Path

    if args.file is not None:
        sink = Path(args.file)
    else:
        sink = Path(args.tail_dir or obs_events.DEFAULT_EVENTS_DIR) \
            / obs_events.SINK_FILENAME
    if not sink.exists() and not args.follow:
        _emit(f"tail: no event sink at {sink} (record one with --events "
              "or REPRO_EVENTS=1)", err=True)
        return 1
    if args.follow:
        try:
            for event in obs_events.tail_events(
                sink, types=args.event_types, follow=True
            ):
                _emit(_render_event(event))
        except KeyboardInterrupt:
            pass
        return 0
    events = obs_events.read_events(sink, types=args.event_types)
    if args.count is not None and args.count >= 0:
        events = events[len(events) - min(args.count, len(events)):]
    for event in events:
        _emit(_render_event(event))
    _emit(f"({len(events)} events from {sink})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP solve service in the foreground until interrupted."""
    import asyncio

    from repro.obs import slo as obs_slo
    from repro.serve import DefenderService, ServeConfig

    objectives = None
    if args.slo_config is not None:
        try:
            objectives = obs_slo.load_slo_config(args.slo_config)
        except ValueError as exc:
            _emit(f"error: {exc}", err=True)
            return 2
    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, request_timeout_s=args.timeout,
    )
    service = DefenderService(config, slo_objectives=objectives)

    async def _run() -> None:
        await service.start()
        _emit(f"serving on http://{config.host}:{service.port} "
              f"({config.workers} workers, queue {config.queue_limit}, "
              f"timeout {config.request_timeout_s:g}s) — Ctrl-C to stop")
        await service.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        _emit("serve: interrupted, shutting down")
    return 0


def _cmd_ledger_stats(args: argparse.Namespace) -> int:
    directory = args.ledger_query_dir
    records = obs_ledger.read_runs(directory=directory)
    rows = obs_report.aggregate_runs(records, group_by=args.group_by)
    if args.fmt == "json":
        _emit(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    table = Table([args.group_by, "runs", "errors", "err%", "p50 s", "p95 s"])
    for row in rows:
        table.add_row([
            row["key"], row["count"], row["errors"],
            f"{row['error_rate'] * 100:.1f}",
            f"{row['duration_s']['p50']:.4f}",
            f"{row['duration_s']['p95']:.4f}",
        ])
    _emit(table.render(title=f"{len(records)} runs in {directory}"))
    return 0


def _cmd_ledger_query(args: argparse.Namespace) -> int:
    records = obs_ledger.read_runs(
        directory=args.ledger_query_dir,
        entry_point=args.entry_point,
        status=args.status,
        fingerprint_sha256=args.fingerprint,
        since=args.since,
        limit=args.limit,
    )
    if args.fmt == "json":
        _emit(json.dumps(records, indent=2, sort_keys=True))
        return 0
    table = Table(["run_id", "entry point", "status", "duration s",
                   "git rev"])
    for record in records:
        table.add_row([
            record.get("run_id", "?"),
            record.get("entry_point", "?"),
            record.get("status", "?"),
            f"{record.get('duration_s', 0.0):.4f}",
            (record.get("env") or {}).get("git_rev", "?"),
        ])
    _emit(table.render(title=f"{len(records)} matching runs"))
    return 0


def _cmd_ledger_report(args: argparse.Namespace) -> int:
    slo_report = None
    if args.slo_config is not None or args.access_path is not None:
        from repro.obs import slo as obs_slo

        try:
            objectives = (obs_slo.load_slo_config(args.slo_config)
                          if args.slo_config is not None
                          else obs_slo.default_objectives())
        except ValueError as exc:
            _emit(f"error: {exc}", err=True)
            return 2
        access = args.access_path or obs_access.DEFAULT_ACCESS_DIR
        slo_report = obs_slo.evaluate_slos(
            objectives, obs_access.read_access(access)
        )
    summary = obs_report.write_report(
        args.ledger_query_dir, args.output, output_md=args.markdown,
        bench_file=args.bench_file, title=args.title,
        slo_report=slo_report,
    )
    _emit(f"report over {summary['records']} runs "
          f"({summary['entry_points']} entry points): "
          + ", ".join(summary["written"]))
    return 0


def _cmd_ledger_diff(args: argparse.Namespace) -> int:
    directory = args.ledger_query_dir
    try:
        run_a = obs_ledger.find_run(args.run_id_a, directory=directory)
        run_b = obs_ledger.find_run(args.run_id_b, directory=directory)
    except ValueError as exc:
        _emit(f"error: {exc}", err=True)
        return 2
    missing = [rid for rid, rec in ((args.run_id_a, run_a),
                                    (args.run_id_b, run_b)) if rec is None]
    if missing:
        _emit("error: no recorded run matching " + ", ".join(missing),
              err=True)
        return 2
    diff = obs_ledger.run_diff(run_a, run_b)
    if args.fmt == "json":
        _emit(json.dumps(diff, indent=2, sort_keys=True))
        return 0
    _emit(f"run a            : {diff['run_a']} ({diff['entry_points'][0]})")
    _emit(f"run b            : {diff['run_b']} ({diff['entry_points'][1]})")
    _emit(f"same fingerprint : "
          f"{'yes' if diff['same_fingerprint'] else 'no'}")
    _emit(f"duration delta   : {diff['duration_delta_s']:+.6f} s")
    for key, change in diff["env_changes"].items():
        _emit(f"env {key}: {change['a']} -> {change['b']}")
    for section in ("counters", "gauges", "histogram_means"):
        deltas = diff["metrics"][section]
        if not deltas:
            continue
        _emit(f"{section}:")
        for name, delta in deltas.items():
            _emit(f"  {name}: {delta:+g}")
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    stats = result_cache.open_store(args.cache_query_dir).stats()
    if args.fmt == "json":
        _emit(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    _emit(f"store            : {stats['path']} "
          f"(schema v{stats['schema_version']})")
    _emit(f"entries          : {stats['entries']} / {stats['max_entries']}")
    _emit(f"payload bytes    : {stats['bytes']} / {stats['max_bytes']}")
    if stats["solvers"]:
        table = Table(["solver", "entries", "bytes", "hits"])
        for solver in sorted(stats["solvers"]):
            row = stats["solvers"][solver]
            table.add_row([solver, row["entries"], row["bytes"],
                           row["hits"]])
        _emit(table.render(title="per-solver breakdown"))
    return 0


def _cmd_cache_lookup(args: argparse.Namespace) -> int:
    entries = result_cache.open_store(args.cache_query_dir).entries(
        key_prefix=args.key_prefix, solver=args.solver, limit=args.limit,
    )
    if args.fmt == "json":
        _emit(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    table = Table(["key", "solver", "fingerprint", "bytes", "hits"])
    for entry in entries:
        table.add_row([
            entry["key"][:16], entry["solver"],
            entry["fingerprint"][:16], entry["size_bytes"], entry["hits"],
        ])
    _emit(table.render(title=f"{len(entries)} matching cache entries"))
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = result_cache.open_store(args.cache_query_dir)
    evicted = store.gc(max_age_s=args.max_age, solver=args.solver)
    remaining = store.stats()["entries"]
    _emit(f"evicted {evicted} entries ({remaining} remain)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.cache_command == "stats":
        return _cmd_cache_stats(args)
    if args.cache_command == "lookup":
        return _cmd_cache_lookup(args)
    if args.cache_command == "gc":
        return _cmd_cache_gc(args)
    raise GameError(f"unknown cache command {args.cache_command!r}")


def _render_slo_table(report: dict) -> str:
    table = Table(["objective", "endpoint", "window s", "requests", "err%",
                   "burn", "p95 s", "target p95", "status"])
    for result in report["results"]:
        targets = result["objective"]
        burn = result.get("burn_rate")
        target_p95 = targets.get("latency_p95_s")
        table.add_row([
            result["name"], result["endpoint"],
            f"{result['window_s']:g}", result["requests"],
            f"{result['error_rate'] * 100:.2f}",
            "-" if burn is None else f"{burn:.2f}",
            f"{result['latency_p95_s']:.4f}",
            "-" if target_p95 is None else f"{target_p95:g}",
            "BREACH" if result["breached"] else "ok",
        ])
    return table.render(title="SLO status")


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate SLO objectives over an access log (check|report)."""
    from repro.obs import slo as obs_slo

    if args.config is not None:
        try:
            objectives = obs_slo.load_slo_config(args.config)
        except ValueError as exc:
            _emit(f"error: {exc}", err=True)
            return 2
    else:
        objectives = obs_slo.default_objectives()
    records = obs_access.read_access(args.access_path)
    report = obs_slo.evaluate_slos(objectives, records, now=args.now)
    if args.slo_command == "report":
        if args.fmt == "json":
            _emit(json.dumps(report, indent=2, sort_keys=True))
        else:
            _emit(_render_slo_table(report))
            _emit(f"({len(records)} access records from {args.access_path})")
        return 0
    if args.slo_command == "check":
        _emit(_render_slo_table(report))
        breaches = report["breaches"]
        if breaches:
            _emit(f"SLO breach: {', '.join(breaches)}", err=True)
            return 1
        _emit("all objectives within budget")
        return 0
    raise GameError(f"unknown slo command {args.slo_command!r}")


def _cmd_ledger(args: argparse.Namespace) -> int:
    if args.ledger_command == "stats":
        return _cmd_ledger_stats(args)
    if args.ledger_command == "query":
        return _cmd_ledger_query(args)
    if args.ledger_command == "report":
        return _cmd_ledger_report(args)
    if args.ledger_command == "diff":
        return _cmd_ledger_diff(args)
    raise GameError(f"unknown ledger command {args.ledger_command!r}")


def _dispatch(args: argparse.Namespace, graph: Graph) -> int:
    if args.command == "info":
        return _cmd_info(graph)
    if args.command == "pure":
        return _cmd_pure(graph, args.k, args.nu)
    if args.command == "solve":
        return _cmd_solve(graph, args.k, args.nu, args.seed)
    if args.command == "gain":
        return _cmd_gain(graph, args.nu, args.lp, args.seed)
    if args.command == "simulate":
        return _cmd_simulate(graph, args.k, args.nu, args.trials, args.seed)
    if args.command == "report":
        return _cmd_report(graph, args.k, args.nu, args.trials, args.seed)
    if args.command == "export":
        return _cmd_export(graph, args.k, args.nu, args.seed, args.output)
    if args.command == "shapes":
        return _cmd_shapes(graph, args.k)
    if args.command == "ranges":
        return _cmd_ranges(graph, args.k)
    if args.command == "redteam":
        return _cmd_redteam(graph, args.k, args.rounds, args.seed)
    if args.command == "stats":
        return _cmd_stats(
            graph, args.k, args.nu, args.seed, args.fmt, args.output
        )
    if args.command == "profile":
        return _cmd_profile(
            graph, args.k, args.nu, args.seed,
            args.chrome_trace, args.folded,
        )
    raise GameError(f"unknown command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    _OUTPUT.quiet = bool(getattr(args, "quiet", False))
    _OUTPUT.json_mode = bool(getattr(args, "log_json", False))
    if getattr(args, "verbose", False):
        obs_log.configure(level="info")
    if _OUTPUT.json_mode:
        obs_log.configure(json_mode=True)
    trace = bool(getattr(args, "trace", False))
    if trace:
        obs_tracing.enable_tracing(True)
        obs_tracing.clear_trace()
    ledger_dir = getattr(args, "ledger_dir", None)
    use_ledger = bool(getattr(args, "ledger", False)) or ledger_dir is not None
    if use_ledger:
        obs_ledger.enable_ledger(ledger_dir)
    events_dir = getattr(args, "events_dir", None)
    use_events = bool(getattr(args, "events", False)) or events_dir is not None
    if use_events:
        obs_events.enable_events(events_dir)
    access_dir = getattr(args, "access_log_dir", None)
    use_access = (
        bool(getattr(args, "access_log", False)) or access_dir is not None
    )
    if use_access:
        obs_access.enable_access_log(access_dir)
    cache_dir = getattr(args, "cache_dir", None)
    # The ``cache`` subcommand *inspects* the store via its own --dir; the
    # memoization switch stays off for it.
    use_cache = (
        bool(getattr(args, "cache", False)) or cache_dir is not None
    ) and args.command != "cache"
    if use_cache:
        result_cache.enable_cache(cache_dir)

    try:
        if args.command == "lint":
            code = run_lint_from_args(args, emit=_emit)
        elif args.command == "fuzz":
            code = run_fuzz_from_args(args, emit=_emit)
        elif args.command == "watch":
            code = run_watch_from_args(args, emit=_emit)
        elif args.command == "tail":
            code = _cmd_tail(args)
        elif args.command == "ledger":
            code = _cmd_ledger(args)
        elif args.command == "cache":
            code = _cmd_cache(args)
        elif args.command == "serve":
            code = _cmd_serve(args)
        elif args.command == "slo":
            code = _cmd_slo(args)
        else:
            graph = load_graph(args.graph)
            code = _dispatch(args, graph)
        if trace and args.command not in ("stats", "profile"):
            _emit("\n== trace ==")
            _emit(obs_tracing.render_trace())
        return code
    except (GameError, OSError) as exc:
        _emit(f"error: {exc}", err=True)
        return 2
    finally:
        if use_ledger:
            obs_ledger.disable_ledger()
        if use_events:
            obs_events.disable_events()
        if use_access:
            obs_access.disable_access_log()
        if use_cache:
            result_cache.disable_cache()
        if trace or args.command in ("stats", "profile"):
            obs_tracing.enable_tracing(False)


if __name__ == "__main__":
    sys.exit(main())
