"""Structural graph predicates used throughout the paper.

§2.1 of the paper defines the vocabulary the whole development rests on:
independent sets, vertex covers, edge covers, matchings, bipartiteness and
``S``-expanders.  This module implements each as an explicit predicate over
:class:`~repro.graphs.core.Graph`, plus the connectivity helpers the model
definition (Definition 2.1: connected graph, no isolated vertices) needs.

Expander checks are re-exported from :mod:`repro.matching.hall`, where they
are decided in polynomial time via Hall's theorem.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graphs.core import Edge, Graph, GraphError, Vertex, canonical_edge

__all__ = [
    "is_independent_set",
    "is_vertex_cover",
    "is_edge_cover",
    "is_matching",
    "is_matched_in",
    "vertices_covered_by_edges",
    "uncovered_vertices",
    "connected_components",
    "is_connected",
    "bipartition",
    "is_bipartite",
    "is_regular",
    "min_degree",
    "max_degree",
    "is_expander",
    "is_expander_into",
]


def _check_vertices(graph: Graph, vertices: Iterable[Vertex]) -> Set[Vertex]:
    vset = set(vertices)
    missing = [v for v in vset if v not in graph]
    if missing:
        raise GraphError(f"vertices not in graph: {missing!r}")
    return vset


def _check_edges(graph: Graph, edges: Iterable[Edge]) -> Set[Edge]:
    eset = {canonical_edge(u, v) for u, v in edges}
    missing = [e for e in eset if e not in graph.edges()]
    if missing:
        raise GraphError(f"edges not in graph: {missing!r}")
    return eset


def is_independent_set(graph: Graph, vertices: Iterable[Vertex]) -> bool:
    """True when no two of the given vertices are adjacent in ``graph``."""
    vset = _check_vertices(graph, vertices)
    return all(not (graph.neighbors(v) & vset) for v in vset)


def is_vertex_cover(graph: Graph, vertices: Iterable[Vertex]) -> bool:
    """True when every edge of ``graph`` has an endpoint in ``vertices``."""
    vset = _check_vertices(graph, vertices)
    return all(u in vset or v in vset for u, v in graph.edges())


def vertices_covered_by_edges(edges: Iterable[Edge]) -> FrozenSet[Vertex]:
    """``V(T)`` in the paper's notation: all endpoints of an edge set."""
    covered: Set[Vertex] = set()
    for u, v in edges:
        covered.add(u)
        covered.add(v)
    return frozenset(covered)


def uncovered_vertices(graph: Graph, edges: Iterable[Edge]) -> FrozenSet[Vertex]:
    """Vertices of ``graph`` that no edge in the given set touches."""
    return frozenset(graph.vertices() - vertices_covered_by_edges(edges))


def is_edge_cover(graph: Graph, edges: Iterable[Edge]) -> bool:
    """True when every vertex of ``graph`` is an endpoint of some edge."""
    eset = _check_edges(graph, edges)
    return not uncovered_vertices(graph, eset)


def is_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """True when no two of the given edges share an endpoint."""
    eset = _check_edges(graph, edges)
    seen: Set[Vertex] = set()
    for u, v in eset:
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def is_matched_in(
    graph: Graph, vertices: Iterable[Vertex], matching: Iterable[Edge]
) -> bool:
    """True when every given vertex is an endpoint of the matching.

    This is the paper's "set ``S`` is matched in ``M``" (§2.1).
    """
    eset = _check_edges(graph, matching)
    if not is_matching(graph, eset):
        raise GraphError("the given edge set is not a matching")
    covered = vertices_covered_by_edges(eset)
    return all(v in covered for v in _check_vertices(graph, vertices))


def connected_components(graph: Graph) -> List[FrozenSet[Vertex]]:
    """Connected components in deterministic order of their minimum vertex."""
    remaining = set(graph.vertices())
    components: List[FrozenSet[Vertex]] = []
    for start in graph.sorted_vertices():
        if start not in remaining:
            continue
        component: Set[Vertex] = {start}
        queue: deque = deque([start])
        remaining.discard(start)
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u in remaining:
                    remaining.discard(u)
                    component.add(u)
                    queue.append(u)
        components.append(frozenset(component))
    return components


def is_connected(graph: Graph) -> bool:
    """True for the empty graph and any single-component graph."""
    if graph.n == 0:
        return True
    return len(connected_components(graph)) == 1


def bipartition(graph: Graph) -> Optional[Tuple[FrozenSet[Vertex], FrozenSet[Vertex]]]:
    """Two-color the graph, returning ``(left, right)`` or ``None``.

    Works component by component (isolated vertices, when present, land on
    the left side).  Deterministic: each component is rooted at its
    smallest vertex, which goes left.
    """
    color: Dict[Vertex, int] = {}
    for start in graph.sorted_vertices():
        if start in color:
            continue
        color[start] = 0
        queue: deque = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if u not in color:
                    color[u] = 1 - color[v]
                    queue.append(u)
                elif color[u] == color[v]:
                    return None
    left = frozenset(v for v, c in color.items() if c == 0)
    right = frozenset(v for v, c in color.items() if c == 1)
    return left, right


def is_bipartite(graph: Graph) -> bool:
    """True when the vertex set splits into two independent classes."""
    return bipartition(graph) is not None


def min_degree(graph: Graph) -> int:
    """The smallest vertex degree (``δ(G)``); undefined on the empty graph."""
    if graph.n == 0:
        raise GraphError("degree undefined on the empty graph")
    return min(graph.degree(v) for v in graph.vertices())


def max_degree(graph: Graph) -> int:
    """The largest vertex degree (``Δ(G)``); undefined on the empty graph."""
    if graph.n == 0:
        raise GraphError("degree undefined on the empty graph")
    return max(graph.degree(v) for v in graph.vertices())


def is_regular(graph: Graph) -> bool:
    """True when all vertices share the same degree."""
    if graph.n == 0:
        return True
    return min_degree(graph) == max_degree(graph)


def is_expander(graph: Graph, source: Iterable[Vertex]):
    """Paper's literal ``S``-expander test; see :mod:`repro.matching.hall`."""
    from repro.matching.hall import is_expander as _impl

    return _impl(graph, _check_vertices(graph, source))


def is_expander_into(graph: Graph, source: Iterable[Vertex], target: Iterable[Vertex]):
    """Hall condition of ``source`` into ``target``; see :mod:`repro.matching.hall`."""
    from repro.matching.hall import is_expander_into as _impl

    return _impl(graph, _check_vertices(graph, source), _check_vertices(graph, target))
