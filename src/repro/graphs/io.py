"""Graph serialization: whitespace edge lists and JSON documents.

The CLI (:mod:`repro.cli`) and the examples read network topologies from
disk.  Two formats are supported:

* **edge list** — one edge per line, two whitespace-separated vertex
  labels; ``#`` starts a comment.  Labels are kept as strings unless every
  label parses as an integer, in which case all are converted (so files of
  numeric IDs round-trip to integer-vertex graphs).
* **JSON** — ``{"vertices": [...], "edges": [[u, v], ...]}``; vertices may
  be listed explicitly to pin ordering/typing, but any endpoint appearing
  only in ``edges`` is accepted too.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.graphs.core import Graph, GraphError

__all__ = [
    "parse_edge_list",
    "format_edge_list",
    "load_edge_list",
    "save_edge_list",
    "graph_to_json",
    "graph_from_json",
    "load_graph",
]

PathLike = Union[str, Path]


def parse_edge_list(text: str) -> Graph:
    """Parse an edge-list document into a :class:`Graph`."""
    pairs: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 2:
            raise GraphError(
                f"line {lineno}: expected two vertex labels, got {len(fields)}"
            )
        pairs.append((fields[0], fields[1]))
    if all(_is_int(u) and _is_int(v) for u, v in pairs):
        return Graph((int(u), int(v)) for u, v in pairs)
    return Graph(pairs)


_CANONICAL_INT = re.compile(r"(0|-?[1-9][0-9]*)\Z")


def _is_int(label: str) -> bool:
    """True only for *canonical* decimal integer labels.

    ``int()`` accepts Python literal conveniences that silently merge or
    rewrite labels: underscore separators (``1_0`` → ``10``), leading
    zeros (``01`` and ``1`` become one vertex), surrounding whitespace and
    an explicit ``+`` sign.  A label is coerced only when its decimal
    rendering round-trips byte-identically, so every edge-list file either
    keeps all labels verbatim (as strings) or maps them 1:1 onto ints.
    """
    return _CANONICAL_INT.match(label) is not None


def format_edge_list(graph: Graph) -> str:
    """Render a graph as a deterministic edge-list document."""
    lines = [f"{u} {v}" for u, v in graph.sorted_edges()]
    return "\n".join(lines) + ("\n" if lines else "")


def load_edge_list(path: PathLike) -> Graph:
    """Read an edge-list file from disk."""
    return parse_edge_list(Path(path).read_text())


def save_edge_list(graph: Graph, path: PathLike) -> None:
    """Write a graph to disk in edge-list format."""
    Path(path).write_text(format_edge_list(graph))


def graph_to_json(graph: Graph) -> str:
    """Serialize a graph as a JSON document (sorted, hence deterministic)."""
    payload = {
        "vertices": graph.sorted_vertices(),
        "edges": [list(e) for e in graph.sorted_edges()],
    }
    return json.dumps(payload, indent=2)


def graph_from_json(text: str) -> Graph:
    """Inverse of :func:`graph_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid JSON graph document: {exc}") from exc
    if not isinstance(payload, dict) or "edges" not in payload:
        raise GraphError("JSON graph document must be an object with an 'edges' key")
    edges = [tuple(e) for e in payload["edges"]]
    for e in edges:
        if len(e) != 2:
            raise GraphError(f"edge {e!r} is not a pair")
    vertices: Sequence = payload.get("vertices", ())
    return Graph(edges, vertices=vertices, allow_isolated=False)


def load_graph(path: PathLike) -> Graph:
    """Load a graph, dispatching on the file extension (``.json`` vs
    anything else = edge list)."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        return graph_from_json(path.read_text())
    return load_edge_list(path)
