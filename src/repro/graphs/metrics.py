"""Classical graph metrics: distances, girth, density, degree statistics.

Used by the security report to characterize a network before the
game-theoretic sections, and by the experiment harness to describe
workload instances.  All BFS-based and dependency-free.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, Optional

from repro.graphs.core import Graph, GraphError, Vertex

__all__ = [
    "bfs_distances",
    "eccentricity",
    "diameter",
    "radius",
    "girth",
    "density",
    "degree_histogram",
    "average_degree",
]


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise GraphError(f"vertex {source!r} is not in the graph")
    distances: Dict[Vertex, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u not in distances:
                distances[u] = distances[v] + 1
                queue.append(u)
    return distances


def eccentricity(graph: Graph, vertex: Vertex) -> int:
    """Largest hop distance from ``vertex``.

    Raises :class:`GraphError` when the graph is disconnected (the
    eccentricity would be infinite).
    """
    distances = bfs_distances(graph, vertex)
    if len(distances) != graph.n:
        raise GraphError("eccentricity undefined on a disconnected graph")
    return max(distances.values())


def diameter(graph: Graph) -> int:
    """Largest eccentricity; connected graphs only."""
    if graph.n == 0:
        raise GraphError("diameter undefined on the empty graph")
    return max(eccentricity(graph, v) for v in graph.sorted_vertices())


def radius(graph: Graph) -> int:
    """Smallest eccentricity; connected graphs only."""
    if graph.n == 0:
        raise GraphError("radius undefined on the empty graph")
    return min(eccentricity(graph, v) for v in graph.sorted_vertices())


def girth(graph: Graph) -> Optional[int]:
    """Length of the shortest cycle, or ``None`` for forests.

    BFS from every vertex; a non-tree edge closing at depths
    ``d(u), d(v)`` witnesses a cycle of length ``d(u) + d(v) + 1``.
    Exact for unweighted graphs.
    """
    best: Optional[int] = None
    for root in graph.sorted_vertices():
        depth: Dict[Vertex, int] = {root: 0}
        parent: Dict[Vertex, Optional[Vertex]] = {root: None}
        queue: deque = deque([root])
        while queue:
            v = queue.popleft()
            if best is not None and depth[v] * 2 >= best:
                continue  # deeper layers cannot improve the bound
            for u in graph.neighbors(v):
                if u not in depth:
                    depth[u] = depth[v] + 1
                    parent[u] = v
                    queue.append(u)
                elif parent[v] != u:
                    cycle = depth[v] + depth[u] + 1
                    if best is None or cycle < best:
                        best = cycle
    return best


def density(graph: Graph) -> float:
    """``2m / (n(n−1))`` — fraction of possible edges present."""
    if graph.n < 2:
        raise GraphError("density undefined below 2 vertices")
    return 2.0 * graph.m / (graph.n * (graph.n - 1))


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """``{degree: vertex count}``, ascending by degree."""
    counts = Counter(graph.degree(v) for v in graph.vertices())
    return dict(sorted(counts.items()))


def average_degree(graph: Graph) -> float:
    """``2m / n``."""
    if graph.n == 0:
        raise GraphError("average degree undefined on the empty graph")
    return 2.0 * graph.m / graph.n
