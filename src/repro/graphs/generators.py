"""Graph generators for examples, tests and the benchmark workloads.

The paper's theorems are quantified over graph families ("any graph",
"bipartite graphs", graphs with small edge covers, ...), so the experiment
harness sweeps over a zoo of structured and random families.  All random
generators take an explicit ``seed`` and are fully deterministic for a
given seed — a requirement for reproducible benchmark tables.

Every generator returns a :class:`~repro.graphs.core.Graph` with integer
vertices ``0..n-1`` (bipartite generators use disjoint integer ranges for
the two sides) and, unless stated otherwise, no isolated vertices, so the
result is directly usable as a game instance.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import List, Tuple

from repro.graphs.core import Edge, Graph, GraphError

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "complete_multipartite_graph",
    "star_graph",
    "wheel_graph",
    "grid_graph",
    "hypercube_graph",
    "petersen_graph",
    "circulant_graph",
    "barbell_graph",
    "lollipop_graph",
    "random_tree",
    "random_graph_with_perfect_matching",
    "random_bipartite_graph",
    "random_connected_graph",
    "gnp_random_graph",
    "double_star_graph",
]


def path_graph(n: int) -> Graph:
    """The path ``P_n`` on vertices ``0..n-1``.  Requires ``n ≥ 2``."""
    if n < 2:
        raise GraphError("a path needs at least 2 vertices")
    return Graph((i, i + 1) for i in range(n - 1))


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``.  Requires ``n ≥ 3``."""
    if n < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    return Graph([(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Graph:
    """The clique ``K_n``.  Requires ``n ≥ 2``."""
    if n < 2:
        raise GraphError("a complete graph needs at least 2 vertices")
    return Graph(combinations(range(n), 2))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with left side ``0..a-1`` and right side ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError("both sides of K_{a,b} need at least one vertex")
    return Graph((i, a + j) for i in range(a) for j in range(b))


def star_graph(leaves: int) -> Graph:
    """The star ``K_{1,leaves}`` with center ``0``."""
    if leaves < 1:
        raise GraphError("a star needs at least one leaf")
    return Graph((0, i) for i in range(1, leaves + 1))


def double_star_graph(left_leaves: int, right_leaves: int) -> Graph:
    """Two adjacent centers, each with its own leaves.

    A tree whose minimum edge cover is much smaller than ``n/2`` on one
    side — a useful stress case for the pure-NE threshold of Theorem 3.1.
    Center vertices are ``0`` and ``1``.
    """
    if left_leaves < 1 or right_leaves < 1:
        raise GraphError("each center needs at least one leaf")
    edges: List[Edge] = [(0, 1)]
    next_vertex = 2
    for _ in range(left_leaves):
        edges.append((0, next_vertex))
        next_vertex += 1
    for _ in range(right_leaves):
        edges.append((1, next_vertex))
        next_vertex += 1
    return Graph(edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid (bipartite).  Requires at least 2 vertices."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise GraphError("a grid needs at least 2 vertices")
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-cube on ``2^dimension`` vertices (bipartite,
    regular)."""
    if dimension < 1:
        raise GraphError("hypercube dimension must be at least 1")
    edges = [
        (v, v ^ (1 << bit))
        for v in range(1 << dimension)
        for bit in range(dimension)
        if v < v ^ (1 << bit)
    ]
    return Graph(edges)


def petersen_graph() -> Graph:
    """The Petersen graph: 3-regular, non-bipartite, well-known NE
    stress-test instance."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph(outer + spokes + inner)


def circulant_graph(n: int, offsets: Tuple[int, ...]) -> Graph:
    """Circulant graph ``C_n(offsets)`` — regular, often non-bipartite."""
    if n < 3:
        raise GraphError("a circulant graph needs at least 3 vertices")
    edges: List[Edge] = []
    for offset in offsets:
        step = offset % n
        if step == 0:
            raise GraphError("offsets must be nonzero modulo n")
        for v in range(n):
            edges.append((v, (v + step) % n))
    return Graph(edges)


def wheel_graph(rim: int) -> Graph:
    """The wheel ``W_rim``: a cycle of ``rim`` vertices plus a hub ``0``
    adjacent to all of them.  Non-bipartite for every ``rim ≥ 3``."""
    if rim < 3:
        raise GraphError("a wheel needs a rim of at least 3 vertices")
    edges: List[Edge] = [(0, i) for i in range(1, rim + 1)]
    edges += [(i, i % rim + 1) for i in range(1, rim + 1)]
    return Graph(edges)


def complete_multipartite_graph(*sizes: int) -> Graph:
    """Complete multipartite graph with the given class sizes.

    Vertices are numbered consecutively class by class; every pair of
    vertices from different classes is adjacent.
    """
    if len(sizes) < 2:
        raise GraphError("a multipartite graph needs at least two classes")
    if any(s < 1 for s in sizes):
        raise GraphError("every class needs at least one vertex")
    boundaries: List[Tuple[int, int]] = []
    start = 0
    for size in sizes:
        boundaries.append((start, start + size))
        start += size
    edges: List[Edge] = []
    for a, (lo_a, hi_a) in enumerate(boundaries):
        for lo_b, hi_b in boundaries[a + 1:]:
            edges.extend(
                (u, v) for u in range(lo_a, hi_a) for v in range(lo_b, hi_b)
            )
    return Graph(edges)


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two ``K_clique`` cliques joined by a path of ``bridge`` edges.

    A classic worst case for expansion: the bridge is a bottleneck, and
    partition search must place its interior carefully.
    """
    if clique < 3:
        raise GraphError("barbell cliques need at least 3 vertices each")
    if bridge < 1:
        raise GraphError("the bridge needs at least one edge")
    left = list(range(clique))
    right = list(range(clique + bridge - 1, 2 * clique + bridge - 1))
    edges: List[Edge] = list(combinations(left, 2))
    edges += list(combinations(right, 2))
    # Bridge path from left[-1] through fresh interior vertices to right[0].
    chain = [left[-1]] + list(range(clique, clique + bridge - 1)) + [right[0]]
    edges += list(zip(chain, chain[1:]))
    return Graph(edges)


def lollipop_graph(clique: int, tail: int) -> Graph:
    """A ``K_clique`` with a path of ``tail`` edges hanging off it."""
    if clique < 3:
        raise GraphError("the lollipop head needs at least 3 vertices")
    if tail < 1:
        raise GraphError("the tail needs at least one edge")
    edges: List[Edge] = list(combinations(range(clique), 2))
    chain = [clique - 1] + list(range(clique, clique + tail))
    edges += list(zip(chain, chain[1:]))
    return Graph(edges)


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random labelled tree via a random Prüfer sequence."""
    if n < 2:
        raise GraphError("a tree needs at least 2 vertices")
    if n == 2:
        return Graph([(0, 1)])
    rng = random.Random(seed)
    pruefer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in pruefer:
        degree[v] += 1
    edges: List[Edge] = []
    # Classic decode: repeatedly join the smallest leaf to the next code
    # symbol.  A simple O(n log n)-ish scan suffices at library scale.
    leaves = sorted(v for v in range(n) if degree[v] == 1)
    for v in pruefer:
        leaf = leaves.pop(0)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            # Insert keeping order for determinism.
            lo, hi = 0, len(leaves)
            while lo < hi:
                mid = (lo + hi) // 2
                if leaves[mid] < v:
                    lo = mid + 1
                else:
                    hi = mid
            leaves.insert(lo, v)
    edges.append((leaves[0], leaves[1]))
    return Graph(edges)


def random_bipartite_graph(
    a: int, b: int, p: float, seed: int = 0
) -> Graph:
    """Random bipartite graph: each of the ``a·b`` cross pairs appears with
    probability ``p``; isolated vertices are then patched with one random
    cross edge so the result is a valid game instance."""
    if a < 1 or b < 1:
        raise GraphError("both sides need at least one vertex")
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must lie in [0, 1]")
    rng = random.Random(seed)
    edges = {
        (i, a + j)
        for i in range(a)
        for j in range(b)
        if rng.random() < p
    }
    touched = {v for e in edges for v in e}
    for i in range(a):
        if i not in touched:
            edges.add((i, a + rng.randrange(b)))
    touched = {v for e in edges for v in e}
    for j in range(b):
        if a + j not in touched:
            edges.add((rng.randrange(a), a + j))
    return Graph(edges)


def gnp_random_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Erdős–Rényi ``G(n, p)`` with isolated vertices patched by one random
    edge each (so the model's no-isolated-vertex precondition holds)."""
    if n < 2:
        raise GraphError("need at least 2 vertices")
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must lie in [0, 1]")
    rng = random.Random(seed)
    edges = {(u, v) for u, v in combinations(range(n), 2) if rng.random() < p}
    touched = {v for e in edges for v in e}
    for v in range(n):
        if v not in touched:
            other = rng.randrange(n - 1)
            if other >= v:
                other += 1
            edges.add((min(v, other), max(v, other)))
            touched.add(other)
    return Graph(edges)


def random_graph_with_perfect_matching(
    pairs: int, extra_edges: int, seed: int = 0
) -> Graph:
    """A random graph on ``2·pairs`` vertices guaranteed to contain a
    perfect matching.

    Construction: vertices ``2i``/``2i+1`` are matched partners; random
    chords are then added.  Workload for the perfect-matching equilibrium
    family (the matching {(0,1), (2,3), ...} is planted, but the *maximum*
    matching the solver finds may of course differ).
    """
    if pairs < 1:
        raise GraphError("need at least one matched pair")
    rng = random.Random(seed)
    n = 2 * pairs
    edges = {(2 * i, 2 * i + 1) for i in range(pairs)}
    candidates = [
        (u, v) for u, v in combinations(range(n), 2) if (u, v) not in edges
    ]
    rng.shuffle(candidates)
    for edge in candidates[:extra_edges]:
        edges.add(edge)
    return Graph(edges)


def random_connected_graph(n: int, extra_edges: int, seed: int = 0) -> Graph:
    """A random tree plus ``extra_edges`` uniformly chosen chords —
    connected by construction, density controlled exactly."""
    tree = random_tree(n, seed=seed)
    rng = random.Random(seed + 1)
    edges = set(tree.edges())
    candidates = [
        (u, v) for u, v in combinations(range(n), 2) if (u, v) not in edges
    ]
    rng.shuffle(candidates)
    for edge in candidates[:extra_edges]:
        edges.add(edge)
    return Graph(edges)
