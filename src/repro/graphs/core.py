"""Core graph data structure for the Tuple-model security game.

The paper plays the game on a finite, undirected, simple graph ``G(V, E)``
with no isolated vertices.  This module provides :class:`Graph`, a small,
immutable adjacency-set representation tailored to the needs of the rest of
the library:

* vertices may be any hashable, mutually orderable objects (ints, strings);
* edges are canonicalized as sorted 2-tuples so that ``(u, v)`` and
  ``(v, u)`` denote the same edge everywhere in the code base;
* the structure is immutable after construction, which lets games,
  configurations and equilibria safely share one graph object.

The class knows nothing about games; structural predicates (covers,
independent sets, expanders, ...) live in :mod:`repro.graphs.properties`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

__all__ = [
    "Vertex",
    "Edge",
    "Graph",
    "canonical_edge",
    "GraphError",
    "vertex_sort_key",
    "edge_sort_key",
    "tuple_sort_key",
]


class GraphError(ValueError):
    """Raised for structurally invalid graph constructions or queries."""


class _SortKey:
    """Total order over mixed vertex types.

    Vertices of the same type compare by their natural order when they
    have one (so integers sort numerically, strings lexicographically);
    different or unorderable types fall back to ``(type name, repr)``,
    which is stable across runs.  Only the comparison protocol needed by
    ``sorted`` (plus ``<=`` for edge canonicalization) is implemented.
    """

    __slots__ = ("type_name", "value")

    def __init__(self, value: Vertex) -> None:
        self.type_name = type(value).__name__
        self.value = value

    def _fallback(self) -> Tuple[str, str]:
        return (self.type_name, repr(self.value))

    def __lt__(self, other: "_SortKey") -> bool:
        if self.type_name == other.type_name:
            try:
                return bool(self.value < other.value)
            except TypeError:
                pass
        return self._fallback() < other._fallback()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self.type_name == other.type_name and self.value == other.value

    def __le__(self, other: "_SortKey") -> bool:
        return self == other or self < other


def _sort_key(vertex: Vertex) -> _SortKey:
    """Key function for the library's deterministic vertex order."""
    return _SortKey(vertex)


#: Public alias, for callers outside this module that want to sort
#: vertices (or vertex-keyed rows) in the library's canonical order.
vertex_sort_key = _sort_key


def edge_sort_key(edge: Edge) -> Tuple[_SortKey, _SortKey]:
    """Sort key placing edges in the library's canonical (lexicographic)
    order.

    Bare ``sorted(edges)`` compares endpoint values directly and raises
    ``TypeError`` on graphs that mix vertex types (ints and strings);
    this key routes every comparison through :func:`vertex_sort_key`, so
    edge order is total and agrees with :meth:`Graph.sorted_edges` on any
    graph the library accepts.
    """
    return (_sort_key(edge[0]), _sort_key(edge[1]))


def tuple_sort_key(edges: Iterable[Edge]) -> Tuple[Tuple[_SortKey, _SortKey], ...]:
    """Sort key for edge *tuples* (defender strategies) — lexicographic on
    :func:`edge_sort_key`, total even across mixed vertex types."""
    return tuple(edge_sort_key(e) for e in edges)


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) representation of the edge ``{u, v}``.

    Raises :class:`GraphError` for self-loops, which the model (a simple
    graph) does not allow.
    """
    if u == v:
        raise GraphError(f"self-loop ({u!r}, {u!r}) is not a valid edge")
    if _sort_key(u) <= _sort_key(v):
        return (u, v)
    return (v, u)


class Graph:
    """An immutable, undirected, simple graph.

    Parameters
    ----------
    edges:
        Iterable of 2-tuples.  Duplicate edges (in either orientation) are
        collapsed; self-loops are rejected.
    vertices:
        Optional extra vertices.  The model forbids isolated vertices, so by
        default every vertex listed here must also appear in some edge;
        pass ``allow_isolated=True`` to lift that restriction (useful for
        intermediate constructions, never for game instances).
    allow_isolated:
        Permit vertices with degree zero.  Game constructors reject such
        graphs regardless; see :meth:`validate_for_game`.

    Examples
    --------
    >>> g = Graph([(1, 2), (2, 3)])
    >>> g.n, g.m
    (3, 2)
    >>> sorted(g.neighbors(2))
    [1, 3]
    """

    __slots__ = ("_adjacency", "_edges", "_vertices", "_hash")

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        vertices: Iterable[Vertex] = (),
        allow_isolated: bool = False,
    ) -> None:
        adjacency: Dict[Vertex, Set[Vertex]] = {}
        edge_set: Set[Edge] = set()
        for item in edges:
            try:
                u, v = item
            except (TypeError, ValueError):
                raise GraphError(f"edge {item!r} is not a 2-tuple") from None
            edge = canonical_edge(u, v)
            edge_set.add(edge)
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        for vertex in vertices:
            adjacency.setdefault(vertex, set())
        if not allow_isolated:
            isolated = [v for v, nbrs in adjacency.items() if not nbrs]
            if isolated:
                raise GraphError(
                    f"isolated vertices are not allowed: {sorted(isolated, key=_sort_key)!r}"
                )
        self._adjacency: Dict[Vertex, FrozenSet[Vertex]] = {
            v: frozenset(nbrs) for v, nbrs in adjacency.items()
        }
        self._edges: FrozenSet[Edge] = frozenset(edge_set)
        self._vertices: FrozenSet[Vertex] = frozenset(adjacency)
        self._hash: int = hash((self._vertices, self._edges))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices, ``|V(G)|``."""
        return len(self._vertices)

    @property
    def m(self) -> int:
        """Number of edges, ``|E(G)|``."""
        return len(self._edges)

    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set ``V(G)``."""
        return self._vertices

    def edges(self) -> FrozenSet[Edge]:
        """The edge set ``E(G)``, each edge in canonical orientation."""
        return self._edges

    def sorted_vertices(self) -> List[Vertex]:
        """Vertices in the library's deterministic total order."""
        return sorted(self._vertices, key=_sort_key)

    def sorted_edges(self) -> List[Edge]:
        """Edges in deterministic order (lexicographic on canonical form)."""
        return sorted(self._edges, key=edge_sort_key)

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._vertices

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if u == v:
            return False
        return canonical_edge(u, v) in self._edges

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """``Neigh_G({v})`` — the open neighborhood of ``v``."""
        try:
            return self._adjacency[v]
        except KeyError:
            raise GraphError(f"vertex {v!r} is not in the graph") from None

    def degree(self, v: Vertex) -> int:
        return len(self.neighbors(v))

    def incident_edges(self, v: Vertex) -> List[Edge]:
        """All edges incident to ``v``, in deterministic order."""
        return sorted(
            (canonical_edge(v, u) for u in self.neighbors(v)),
            key=edge_sort_key,
        )

    def neighborhood(self, vertices: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """``Neigh_G(X)`` as in the paper: all endpoints of edges leaving X.

        Note the paper's definition is the *open* neighborhood union — a
        vertex of ``X`` appears in the result only if it has a neighbor
        inside ``X``.
        """
        result: Set[Vertex] = set()
        for v in vertices:
            result.update(self.neighbors(v))
        return frozenset(result)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph_from_edges(self, edges: Iterable[Edge]) -> "Graph":
        """The graph *obtained by* an edge set ``T`` in the paper's sense.

        ``V(G_T) = V(T)`` (endpoints only) and ``E(G_T) = T``.  Every edge
        must exist in this graph.
        """
        chosen: List[Edge] = []
        for u, v in edges:
            edge = canonical_edge(u, v)
            if edge not in self._edges:
                raise GraphError(f"edge {edge!r} is not an edge of the graph")
            chosen.append(edge)
        return Graph(chosen)

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Subgraph induced by a vertex subset (isolated vertices kept)."""
        keep = set(vertices)
        missing = keep - self._vertices
        if missing:
            raise GraphError(f"vertices not in graph: {sorted(missing, key=_sort_key)!r}")
        edges = [e for e in self._edges if e[0] in keep and e[1] in keep]
        return Graph(edges, vertices=keep, allow_isolated=True)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_for_game(self) -> None:
        """Check the model's preconditions: non-empty, no isolated vertices.

        Raises :class:`GraphError` when the graph cannot host an instance of
        the Tuple model (Definition 2.1 requires at least one edge and no
        isolated vertices).
        """
        if self.m == 0:
            raise GraphError("the game requires a graph with at least one edge")
        for v, nbrs in self._adjacency.items():
            if not nbrs:
                raise GraphError(f"vertex {v!r} is isolated; the model forbids this")

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.sorted_vertices())

    def __len__(self) -> int:
        return self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, pairs: Sequence[Sequence[Vertex]]) -> "Graph":
        """Build a graph from any sequence of vertex pairs."""
        return cls((tuple(p) for p in pairs))
