"""Graph substrate: data structure, generators, predicates, serialization.

The game of the paper (Definition 2.1) is played on an undirected simple
graph with no isolated vertices; this package provides everything the game
and equilibrium layers need to talk about such graphs.
"""

from repro.graphs.core import (
    Edge,
    Graph,
    GraphError,
    Vertex,
    canonical_edge,
    vertex_sort_key,
)
from repro.graphs.metrics import (
    average_degree,
    degree_histogram,
    density,
    diameter,
    girth,
    radius,
)
from repro.graphs.transform import complement, disjoint_union, relabel, subdivide
from repro.graphs.properties import (
    bipartition,
    connected_components,
    is_bipartite,
    is_connected,
    is_edge_cover,
    is_independent_set,
    is_matching,
    is_vertex_cover,
    uncovered_vertices,
    vertices_covered_by_edges,
)

__all__ = [
    "Edge",
    "Graph",
    "GraphError",
    "Vertex",
    "canonical_edge",
    "vertex_sort_key",
    "average_degree",
    "degree_histogram",
    "density",
    "diameter",
    "girth",
    "radius",
    "complement",
    "disjoint_union",
    "relabel",
    "subdivide",
    "bipartition",
    "connected_components",
    "is_bipartite",
    "is_connected",
    "is_edge_cover",
    "is_independent_set",
    "is_matching",
    "is_vertex_cover",
    "uncovered_vertices",
    "vertices_covered_by_edges",
]
