"""Graph transformations: relabeling, disjoint union, subdivision.

Composition helpers for building scenario networks, plus one transform
with game-theoretic teeth: **subdivision**.  Placing a relay host on every
link makes any network bipartite (every cycle doubles in length), and
bipartite networks *always* admit k-matching equilibria (Theorem 5.1) —
so subdivision is a topology-level mitigation that brings a stubborn
network (a Petersen mesh, an odd ring) into the reach of the paper's
constructive machinery.  The ``subdivided_topology_always_solves``
integration test and the examples exercise exactly that story.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graphs.core import Edge, Graph, GraphError, Vertex, canonical_edge

__all__ = ["relabel", "disjoint_union", "subdivide", "complement"]


def relabel(graph: Graph, mapping: Callable[[Vertex], Vertex]) -> Graph:
    """Apply a vertex-renaming function; must be injective on ``V``."""
    new_names: Dict[Vertex, Vertex] = {}
    for v in graph.vertices():
        name = mapping(v)
        new_names[v] = name
    if len(set(new_names.values())) != graph.n:
        raise GraphError("relabeling function is not injective on the vertex set")
    return Graph(
        (new_names[u], new_names[v]) for u, v in graph.edges()
    )


def disjoint_union(left: Graph, right: Graph) -> Graph:
    """Disjoint union, keeping labels apart by tagging each side.

    Vertices become ``("L", v)`` / ``("R", v)`` pairs, so the operands'
    label spaces can overlap freely.
    """
    edges: List[Edge] = [
        (("L", u), ("L", v)) for u, v in left.edges()
    ] + [
        (("R", u), ("R", v)) for u, v in right.edges()
    ]
    return Graph(edges)


def subdivide(graph: Graph) -> Graph:
    """Subdivide every edge once: ``u—v`` becomes ``u—(u,v)—v``.

    The relay vertex is the canonical edge tuple itself.  The result is
    always bipartite (original vertices on one side, relays on the other),
    with ``n + m`` vertices and ``2m`` edges.
    """
    if graph.m == 0:
        raise GraphError("cannot subdivide an edgeless graph")
    edges: List[Edge] = []
    for u, v in graph.edges():
        relay = canonical_edge(u, v)
        edges.append((u, relay))
        edges.append((relay, v))
    return Graph(edges)


def complement(graph: Graph) -> Graph:
    """The complement graph on the same vertices.

    Vertices isolated in the complement (i.e. universal vertices of the
    input) make the result unusable as a game instance; the constructor
    is therefore called with ``allow_isolated=True`` and callers should
    run :meth:`~repro.graphs.core.Graph.validate_for_game` before playing
    on it.
    """
    vertices = graph.sorted_vertices()
    edges = [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1:]
        if not graph.has_edge(u, v)
    ]
    return Graph(edges, vertices=vertices, allow_isolated=True)
