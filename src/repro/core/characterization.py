"""The mixed Nash equilibrium characterization — Theorem 3.4.

A mixed configuration of ``Π_k(G)`` is a Nash equilibrium iff:

1. ``E(D_s(tp))`` is an edge cover of ``G`` **and** ``D_s(VP)`` is a vertex
   cover of the graph obtained by ``E(D_s(tp))``;
2. (a) all support vertices of the attackers have equal — and globally
   minimal — hit probability; (b) the defender's probabilities sum to 1;
3. (a) all support tuples of the defender carry equal — and globally
   maximal — attacker mass; (b) the attacker mass on ``V(D_s(tp))`` is
   ``ν``.

:func:`check_characterization` evaluates each clause separately and reports
a structured verdict, so tests and benchmarks can demonstrate not only that
constructed equilibria pass but *which* clause a perturbed profile breaks.

:func:`verify_best_responses` is an independent first-principles NE check
(every player's expected profit equals its best-response payoff); the two
must agree — Theorem 3.4 — and the test suite asserts exactly that.

**Degenerate boundary.**  The necessity proof of clause 1 (the paper's
Claim 3.6) swaps one support edge for another and therefore assumes
``|E(D_s(tp))| ≥ k + 1`` — the paper notes "otherwise s* is a pure
configuration".  A profile whose defender support is a *single* tuple that
happens to be an edge cover is a Nash equilibrium (every attacker is hit
with probability 1 wherever it stands) yet violates clause 1's
vertex-cover half.  :class:`CharacterizationReport` exposes this via
``properly_mixed``; :func:`is_mixed_nash` applies the characterization to
properly mixed profiles and falls back to the first-principles check on
degenerate ones, so it is a correct NE oracle everywhere.

The global comparisons in 2(a)/3(a) need ``min_v Hit(v)`` and
``max_t m_s(t)``; the latter is the NP-hard coverage maximum, delegated to
:mod:`repro.solvers.best_response` (exact for the instance sizes where
verification is meaningful).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import (
    all_hit_probabilities,
    all_vertex_masses,
    expected_profit_tp,
    expected_profit_vp,
    tuple_mass,
)
from repro.graphs.core import Graph, tuple_sort_key, vertex_sort_key
from repro.graphs.properties import is_edge_cover, is_vertex_cover, uncovered_vertices


def _best_tuple(*args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Lazy bridge to :func:`repro.solvers.best_response.best_tuple`.

    Verification needs the exact coverage optimum from the solver layer;
    a module-level import would invert the core -> solvers layering
    (LAY001), so the dependency stays function-level.
    """
    from repro.solvers.best_response import best_tuple

    return best_tuple(*args, **kwargs)

__all__ = ["CharacterizationReport", "check_characterization", "is_mixed_nash", "verify_best_responses"]

_TOL = 1e-9


class CharacterizationReport:
    """Structured outcome of a Theorem 3.4 check.

    Attributes mirror the theorem's clauses; ``failures`` collects
    human-readable diagnostics for every violated clause.
    """

    __slots__ = (
        "condition_1_edge_cover",
        "condition_1_vertex_cover",
        "condition_2a_uniform_min_hit",
        "condition_2b_tp_mass",
        "condition_3a_uniform_max_mass",
        "condition_3b_total_mass",
        "properly_mixed",
        "failures",
    )

    def __init__(self) -> None:
        self.condition_1_edge_cover = False
        self.condition_1_vertex_cover = False
        self.condition_2a_uniform_min_hit = False
        self.condition_2b_tp_mass = False
        self.condition_3a_uniform_max_mass = False
        self.condition_3b_total_mass = False
        self.properly_mixed = False
        self.failures: List[str] = []

    @property
    def is_nash(self) -> bool:
        """True when every clause of Theorem 3.4 holds."""
        return (
            self.condition_1_edge_cover
            and self.condition_1_vertex_cover
            and self.condition_2a_uniform_min_hit
            and self.condition_2b_tp_mass
            and self.condition_3a_uniform_max_mass
            and self.condition_3b_total_mass
        )

    def __bool__(self) -> bool:
        return self.is_nash

    def __repr__(self) -> str:
        status = "NE" if self.is_nash else f"not NE ({len(self.failures)} failures)"
        return f"CharacterizationReport({status})"


def check_characterization(
    game: TupleGame,
    config: MixedConfiguration,
    method: str = "auto",
    tol: float = _TOL,
) -> CharacterizationReport:
    """Evaluate every clause of Theorem 3.4 against a mixed configuration.

    ``method`` selects the coverage-maximum solver for clause 3(a) (see
    :func:`repro.solvers.best_response.best_tuple`); ``tol`` is the
    numerical tolerance for probability comparisons.
    """
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    graph: Graph = game.graph
    report = CharacterizationReport()

    support_edges = config.tp_support_edges()
    vp_support = config.vp_support_union()
    # Claim 3.6's premise: the theorem targets properly mixed profiles.
    report.properly_mixed = len(support_edges) >= game.k + 1

    # --- Condition 1 --------------------------------------------------
    report.condition_1_edge_cover = is_edge_cover(graph, support_edges)
    if not report.condition_1_edge_cover:
        missing = sorted(uncovered_vertices(graph, support_edges), key=vertex_sort_key)
        report.failures.append(
            f"condition 1: E(D(tp)) leaves vertices uncovered: {missing!r}"
        )
    obtained = graph.subgraph_from_edges(support_edges)
    cover_candidates = vp_support & obtained.vertices()
    report.condition_1_vertex_cover = is_vertex_cover(obtained, cover_candidates)
    if not report.condition_1_vertex_cover:
        report.failures.append(
            "condition 1: D(VP) is not a vertex cover of the graph obtained "
            "by E(D(tp))"
        )

    # --- Condition 2 --------------------------------------------------
    hits = all_hit_probabilities(config)
    support_hits = [hits[v] for v in vp_support]
    global_min = min(hits.values())
    spread = max(support_hits) - min(support_hits) if support_hits else 0.0
    above_min = max(support_hits) - global_min if support_hits else 0.0
    report.condition_2a_uniform_min_hit = spread <= tol and above_min <= tol
    if not report.condition_2a_uniform_min_hit:
        report.failures.append(
            "condition 2(a): hit probabilities on D(VP) are not uniformly "
            f"minimal (spread={spread:.3e}, above global min={above_min:.3e})"
        )
    tp_mass = sum(config.tp_distribution().values())
    report.condition_2b_tp_mass = abs(tp_mass - 1.0) <= tol
    if not report.condition_2b_tp_mass:
        report.failures.append(
            f"condition 2(b): defender probabilities sum to {tp_mass!r}, not 1"
        )

    # --- Condition 3 --------------------------------------------------
    masses = all_vertex_masses(config)
    support_tuple_masses = [
        tuple_mass(config, t) for t in sorted(config.tp_support(), key=tuple_sort_key)
    ]
    _, global_max = _best_tuple(graph, masses, game.k, method=method)
    mass_spread = (
        max(support_tuple_masses) - min(support_tuple_masses)
        if support_tuple_masses
        else 0.0
    )
    below_max = (
        global_max - min(support_tuple_masses) if support_tuple_masses else 0.0
    )
    report.condition_3a_uniform_max_mass = mass_spread <= tol and below_max <= tol
    if not report.condition_3a_uniform_max_mass:
        report.failures.append(
            "condition 3(a): support-tuple masses are not uniformly maximal "
            f"(spread={mass_spread:.3e}, below global max={below_max:.3e})"
        )
    covered_mass = sum(masses[v] for v in config.tp_support_vertices())
    report.condition_3b_total_mass = abs(covered_mass - game.nu) <= tol * max(
        1.0, game.nu
    )
    if not report.condition_3b_total_mass:
        report.failures.append(
            f"condition 3(b): mass on V(D(tp)) is {covered_mass!r}, expected ν={game.nu}"
        )

    return report


def is_mixed_nash(
    game: TupleGame,
    config: MixedConfiguration,
    method: str = "auto",
    tol: float = _TOL,
) -> bool:
    """True when the configuration is a mixed Nash equilibrium.

    Applies Theorem 3.4 to properly mixed profiles and the
    first-principles best-response check to degenerate ones (see the
    module docstring on the Claim 3.6 boundary).
    """
    report = check_characterization(game, config, method=method, tol=tol)
    if report.properly_mixed:
        return report.is_nash
    ok, _ = verify_best_responses(game, config, method=method, tol=tol)
    return ok


def verify_best_responses(
    game: TupleGame,
    config: MixedConfiguration,
    method: str = "auto",
    tol: float = _TOL,
) -> Tuple[bool, Dict[str, float]]:
    """First-principles NE check, independent of Theorem 3.4.

    A mixed profile is an NE iff no player gains by deviating to any pure
    strategy.  For vertex player ``i`` the best deviation earns
    ``max_v (1 − Hit(v))``; for the defender it earns ``max_t m_s(t)``.
    Returns ``(is_nash, gaps)`` where ``gaps`` maps each player label to
    its best-response regret (non-positive up to tolerance at an NE).
    """
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    hits = all_hit_probabilities(config)
    best_vp_payoff = 1.0 - min(hits.values())
    gaps: Dict[str, float] = {}
    ok = True
    for i in range(game.nu):
        regret = best_vp_payoff - expected_profit_vp(config, i)
        gaps[f"vp_{i}"] = regret
        if regret > tol:
            ok = False
    masses = all_vertex_masses(config)
    _, best_tp_payoff = _best_tuple(game.graph, masses, game.k, method=method)
    tp_regret = best_tp_payoff - expected_profit_tp(config)
    gaps["tp"] = tp_regret
    if tp_regret > tol * max(1.0, game.nu):
        ok = False
    return ok, gaps
