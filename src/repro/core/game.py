"""The Tuple-model game ``Π_k(G)`` (Definition 2.1).

A game instance bundles the graph, the defender's power ``k`` (how many
edges the tuple player scans) and the number ``ν`` of vertex players
(attackers).  The object is immutable; configurations and equilibria refer
back to it for validation and payoff computation.

For ``k = 1`` the instance *is* an Edge-model instance ``Π_1(G)`` (Remark
after Definition 2.1); :meth:`TupleGame.edge_game` produces that restriction
explicitly, which the reduction of Theorem 4.5 uses.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.graphs.core import Graph, GraphError, Vertex
from repro.core.tuples import count_tuples

__all__ = ["TupleGame", "GameError"]


class GameError(ValueError):
    """Raised for invalid game parameters or malformed configurations."""


class TupleGame:
    """An instance ``Π_k(G)`` of the Tuple model.

    Parameters
    ----------
    graph:
        The network; must have no isolated vertices and at least one edge.
    k:
        Defender power: number of distinct edges per defender strategy,
        ``1 ≤ k ≤ m``.
    nu:
        Number of vertex players (attackers), ``ν ≥ 1``.

    Examples
    --------
    >>> from repro.graphs.generators import path_graph
    >>> game = TupleGame(path_graph(4), k=2, nu=3)
    >>> game.k, game.nu, game.n, game.m
    (2, 3, 4, 3)
    """

    __slots__ = ("_graph", "_k", "_nu")

    def __init__(self, graph: Graph, k: int, nu: int = 1) -> None:
        try:
            graph.validate_for_game()
        except GraphError as exc:
            raise GameError(f"invalid game graph: {exc}") from exc
        if not isinstance(k, int) or not 1 <= k <= graph.m:
            raise GameError(f"k must be an integer with 1 <= k <= m={graph.m}; got {k!r}")
        if not isinstance(nu, int) or nu < 1:
            raise GameError(f"the game needs at least one vertex player; got nu={nu!r}")
        self._graph = graph
        self._k = k
        self._nu = nu

    @property
    def graph(self) -> Graph:
        """The underlying network ``G``."""
        return self._graph

    @property
    def k(self) -> int:
        """Defender power: edges per tuple."""
        return self._k

    @property
    def nu(self) -> int:
        """Number of vertex players ``ν``."""
        return self._nu

    @property
    def n(self) -> int:
        """``|V(G)|``."""
        return self._graph.n

    @property
    def m(self) -> int:
        """``|E(G)|``."""
        return self._graph.m

    @property
    def vertex_strategies(self) -> FrozenSet[Vertex]:
        """Strategy set of every vertex player: ``V(G)``."""
        return self._graph.vertices()

    def tuple_strategy_count(self) -> int:
        """``|E^k| = C(m, k)`` — size of the defender's strategy set."""
        return count_tuples(self._graph, self._k)

    def edge_game(self, nu: int = None) -> "TupleGame":
        """The corresponding Edge-model instance ``Π_1(G)``.

        Used by the Theorem 4.5 reduction.  ``nu`` defaults to this game's
        attacker count.
        """
        return TupleGame(self._graph, 1, self._nu if nu is None else nu)

    def is_edge_model(self) -> bool:
        """True when this instance is an Edge-model game (``k = 1``)."""
        return self._k == 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleGame):
            return NotImplemented
        return (
            self._graph == other._graph
            and self._k == other._k
            and self._nu == other._nu
        )

    def __hash__(self) -> int:
        return hash((self._graph, self._k, self._nu))

    def __repr__(self) -> str:
        return f"TupleGame(n={self.n}, m={self.m}, k={self._k}, nu={self._nu})"
