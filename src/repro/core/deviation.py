"""Best-deviation witnesses: *where* a profile fails, not just whether.

:func:`repro.core.characterization.verify_best_responses` answers "is this
an equilibrium?" with regrets; diagnosing a broken schedule needs the
actual witnesses — which vertex the attacker should move to, which tuple
the defender should switch to, and how much each deviation earns.  The
witnesses instantiate the best-response clauses of Theorem 3.4 against
the Definition 2.1 profit model; the report and red-team tooling surface
them.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import (
    all_hit_probabilities,
    all_vertex_masses,
    expected_profit_tp,
    expected_profit_vp,
)
from repro.core.tuples import EdgeTuple
from repro.graphs.core import Vertex, vertex_sort_key

__all__ = ["AttackerDeviation", "DefenderDeviation",
           "best_attacker_deviation", "best_defender_deviation",
           "exploitability"]


class AttackerDeviation(NamedTuple):
    """Best pure deviation for one attacker."""

    player: int
    vertex: Vertex
    payoff: float
    gain: float


class DefenderDeviation(NamedTuple):
    """Best pure deviation for the defender."""

    tuple_choice: EdgeTuple
    payoff: float
    gain: float


def best_attacker_deviation(
    game: TupleGame, config: MixedConfiguration, player: int = 0
) -> AttackerDeviation:
    """The vertex maximizing attacker ``player``'s escape probability
    against the defender's mixture, with the improvement over its current
    expected profit (``gain ≤ 0`` means the player is already satisfied,
    up to numerical noise)."""
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    if not 0 <= player < game.nu:
        raise GameError(f"no vertex player {player} (nu={game.nu})")
    hits = all_hit_probabilities(config)
    best_vertex = min(
        game.graph.vertices(), key=lambda v: (hits[v], vertex_sort_key(v))
    )
    payoff = 1.0 - hits[best_vertex]
    current = expected_profit_vp(config, player)
    return AttackerDeviation(player, best_vertex, payoff, payoff - current)


def best_defender_deviation(
    game: TupleGame, config: MixedConfiguration, method: str = "auto"
) -> DefenderDeviation:
    """The tuple maximizing expected catches against the attackers'
    mixtures, with the improvement over the defender's current profit."""
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    # Lazy: a module-level import would invert core -> solvers (LAY001).
    from repro.solvers.best_response import best_tuple

    masses = all_vertex_masses(config)
    choice, payoff = best_tuple(game.graph, masses, game.k, method=method)
    current = expected_profit_tp(config)
    return DefenderDeviation(choice, payoff, payoff - current)


def exploitability(
    game: TupleGame, config: MixedConfiguration, method: str = "auto"
) -> float:
    """The profile's distance from equilibrium: the largest positive
    deviation gain any player has (0 at an exact NE).

    Defender gain is normalized by ``ν`` so the measure is comparable
    across attacker counts.
    """
    worst = 0.0
    for i in range(game.nu):
        worst = max(worst, best_attacker_deviation(game, config, i).gain)
    defender = best_defender_deviation(game, config, method=method)
    worst = max(worst, defender.gain / game.nu)
    return max(0.0, worst)
