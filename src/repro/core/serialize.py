"""JSON serialization of games, configurations and solve results.

Deployment artifacts: a solved scan schedule must survive being written to
disk, shipped to the scanner host and reloaded.  The JSON document pins
the full game (graph, k, ν), the equilibrium kind and every probability,
and loading re-validates everything through the normal constructors, so a
tampered or truncated document fails loudly rather than deploying a
non-equilibrium schedule.

Vertices must be JSON-representable (ints or strings — the same types the
graph I/O layer produces).  Probabilities round-trip as floats; documents
are key-sorted and therefore byte-deterministic for a given profile.  The
payload is a mixed configuration of the Definition 2.1 model plus the
equilibrium kind assigned by the Theorem 4.5 solve cascade.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError, TupleGame
from repro.graphs.core import Graph, tuple_sort_key, vertex_sort_key

__all__ = [
    "game_to_json",
    "game_from_json",
    "configuration_to_json",
    "configuration_from_json",
    "solve_result_to_json",
]

_FORMAT = "repro.mixed-configuration.v1"

#: ``model`` discriminator value for weighted games.  Plain games carry
#: no ``model`` key at all — their payload (and therefore their
#: fingerprint and every committed document hashing it) is byte-for-byte
#: what it was before the weighted model existed.
_WEIGHTED_MODEL = "weighted-tuple"


def _game_payload(game: Any) -> Dict[str, Any]:
    """Canonical payload of a plain or weighted game.

    ``game`` is duck-typed: anything exposing ``graph``/``k``/``nu`` plus
    a ``weights`` mapping is treated as a
    :class:`~repro.weighted.game.WeightedTupleGame` (serialize sits below
    ``repro.weighted`` in the layering DAG, so the class itself cannot be
    imported here at module scope).  Weighted payloads carry a ``model``
    discriminator and the weight vector in canonical vertex order with
    every value pinned through ``float`` — two games differing only in
    weights therefore serialize (and fingerprint) differently.
    """
    payload: Dict[str, Any] = {
        "vertices": game.graph.sorted_vertices(),
        "edges": [list(e) for e in game.graph.sorted_edges()],
        "k": game.k,
        "nu": game.nu,
    }
    weights = getattr(game, "weights", None)
    if weights is not None:
        payload["model"] = _WEIGHTED_MODEL
        payload["weights"] = [
            [v, float(weights[v])]
            for v in sorted(weights, key=vertex_sort_key)
        ]
    return payload


def game_to_json(game: Any) -> str:
    """Canonical, byte-deterministic JSON dump of a game (graph, k, ν).

    Key-sorted and whitespace-free, so two structurally identical games
    always serialize to the same bytes — the provenance ledger
    (:mod:`repro.obs.ledger`) hashes this document as the game
    fingerprint of a recorded run, and the result cache
    (:mod:`repro.cache`) keys entries by that hash.  Weighted games
    (:class:`~repro.weighted.game.WeightedTupleGame`) include their
    ``model`` discriminator and weight vector, so games differing only
    in vertex weights never collide.
    """
    return json.dumps(
        _game_payload(game), sort_keys=True, separators=(",", ":")
    )


def _game_from_payload(payload: Dict[str, Any]) -> Any:
    try:
        model = payload.get("model", "tuple")
        edges = [tuple(e) for e in payload["edges"]]
        graph = Graph(edges, vertices=payload.get("vertices", ()))
        if model == _WEIGHTED_MODEL:
            # Deliberate layering inversion (core -> weighted), deferred
            # to call time and only paid on weighted documents: the
            # payload names a class that lives above this module.
            from repro.weighted.game import WeightedTupleGame

            weights = {v: float(w) for v, w in payload["weights"]}
            return WeightedTupleGame(
                graph, int(payload["k"]), weights, nu=int(payload["nu"])
            )
        if model != "tuple":
            raise GameError(f"unknown game model {model!r}")
        return TupleGame(graph, int(payload["k"]), int(payload["nu"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise GameError(f"malformed game payload: {exc}") from exc


def game_from_json(text: str) -> Any:
    """Parse a :func:`game_to_json` document back into a game.

    Reconstructs the right type from the ``model`` discriminator — a
    weighted document yields a
    :class:`~repro.weighted.game.WeightedTupleGame` with its weights
    intact instead of silently downgrading to a plain
    :class:`~repro.core.game.TupleGame`.  Raises
    :class:`~repro.core.game.GameError` on malformed documents.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GameError(f"invalid JSON game document: {exc}") from exc
    if not isinstance(payload, dict):
        raise GameError("game document is not a JSON object")
    return _game_from_payload(payload)


def configuration_to_json(config: MixedConfiguration) -> str:
    """Serialize a mixed configuration (with its game) to JSON."""
    game = config.game
    payload = {
        "format": _FORMAT,
        "game": _game_payload(game),
        "vertex_players": [
            sorted(
                ([v, p] for v, p in config.vp_distribution(i).items()),
                key=lambda item: vertex_sort_key(item[0]),
            )
            for i in range(game.nu)
        ],
        "tuple_player": [
            {"edges": [list(e) for e in t], "probability": p}
            for t, p in sorted(
                config.tp_distribution().items(),
                key=lambda item: tuple_sort_key(item[0]),
            )
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def configuration_from_json(text: str) -> MixedConfiguration:
    """Parse and fully re-validate a serialized mixed configuration.

    Raises :class:`~repro.core.game.GameError` on any structural defect:
    wrong format tag, missing keys, probabilities that do not sum to one,
    strategies outside the game.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GameError(f"invalid JSON configuration document: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise GameError(
            f"unrecognized configuration format (expected {_FORMAT!r})"
        )
    for key in ("game", "vertex_players", "tuple_player"):
        if key not in payload:
            raise GameError(f"configuration document is missing {key!r}")
    game = _game_from_payload(payload["game"])

    vp_dists: List[Dict] = []
    for entry in payload["vertex_players"]:
        try:
            vp_dists.append({v: float(p) for v, p in entry})
        except (TypeError, ValueError) as exc:
            raise GameError(f"malformed vertex-player distribution: {exc}") from exc

    tp_dist: Dict[Any, float] = {}
    for item in payload["tuple_player"]:
        try:
            key = tuple(tuple(e) for e in item["edges"])
            tp_dist[key] = float(item["probability"])
        except (KeyError, TypeError, ValueError) as exc:
            raise GameError(f"malformed tuple-player entry: {exc}") from exc

    # MixedConfiguration re-validates supports, arities and unit mass.
    return MixedConfiguration(game, vp_dists, tp_dist)


def solve_result_to_json(result: Any) -> str:
    """Serialize a :class:`~repro.equilibria.solve.SolveResult` with its
    equilibrium, kind and gain (one self-contained deployment document)."""
    inner = json.loads(configuration_to_json(result.mixed))
    inner["solve"] = {
        "kind": result.kind,
        "defender_gain": result.defender_gain,
        "partition": (
            None
            if result.partition is None
            else {
                "independent_set": sorted(result.partition[0], key=vertex_sort_key),
                "vertex_cover": sorted(result.partition[1], key=vertex_sort_key),
            }
        ),
    }
    return json.dumps(inner, indent=2, sort_keys=True)
