"""Pure Nash equilibria of the Tuple model — Theorem 3.1 and corollaries.

Theorem 3.1: ``Π_k(G)`` has a pure NE **iff** ``G`` has an edge cover of
size ``k``.  The equilibria themselves are the profiles where the
defender's ``k`` edges cover every vertex (so each attacker earns its
maximum possible profit, 0, no matter where it stands, and the defender
earns ``ν``).

Corollary 3.2 (polynomial decidability) follows because minimum edge covers
are a matching computation (Gallai; see :mod:`repro.matching.covers`), and
Corollary 3.3 (no pure NE once ``n ≥ 2k + 1``) because any edge cover needs
at least ``n/2`` edges.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.configuration import PureConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import pure_profit_tp, pure_profit_vp
from repro.graphs.core import Edge, edge_sort_key
from repro.matching.covers import minimum_edge_cover, minimum_edge_cover_size

__all__ = [
    "pure_nash_exists",
    "find_pure_nash",
    "edge_cover_of_size",
    "is_pure_nash",
]


def pure_nash_exists(game: TupleGame) -> bool:
    """Decide pure-NE existence (Theorem 3.1 + Corollary 3.2).

    Equivalent to ``ρ(G) ≤ k`` where ``ρ`` is the minimum-edge-cover size;
    ``k ≤ m`` is guaranteed by the game's own validation.
    """
    return minimum_edge_cover_size(game.graph) <= game.k


def edge_cover_of_size(game: TupleGame) -> Optional[List[Edge]]:
    """An edge cover with exactly ``k`` distinct edges, or ``None``.

    A minimum cover is padded with arbitrary further edges — adding edges
    never uncovers a vertex, so any ``k`` between ``ρ(G)`` and ``m`` works.
    """
    minimum = sorted(minimum_edge_cover(game.graph), key=edge_sort_key)
    if len(minimum) > game.k:
        return None
    extras = [e for e in game.graph.sorted_edges() if e not in set(minimum)]
    return minimum + extras[: game.k - len(minimum)]


def find_pure_nash(game: TupleGame) -> Optional[PureConfiguration]:
    """Construct a pure NE, or ``None`` when Theorem 3.1 rules one out.

    Follows the theorem's sufficiency proof: the defender plays an edge
    cover of size ``k``; attackers may stand anywhere (every placement
    yields the same zero profit), so we place them all on the smallest
    vertex for determinism.
    """
    cover = edge_cover_of_size(game)
    if cover is None:
        return None
    anchor = game.graph.sorted_vertices()[0]
    return PureConfiguration(game, [anchor] * game.nu, cover)


def is_pure_nash(game: TupleGame, config: PureConfiguration, method: str = "auto") -> bool:
    """Directly verify that a pure profile is a Nash equilibrium.

    Checks best responses from first principles (no reliance on Theorem
    3.1), so tests can use it to *validate* the theorem:

    * attacker ``i`` must earn ``1``, or no uncovered vertex may exist;
    * the defender's tuple must achieve ``max_t |{i : s_i ∈ V(t)}|``,
      computed exactly by the coverage solver.
    """
    if config.game != game:
        raise GameError("configuration belongs to a different game")
    covered = config.covered_vertices()
    fully_covered = covered == game.graph.vertices()
    for i in range(game.nu):
        if pure_profit_vp(config, i) == 0 and not fully_covered:
            return False  # the attacker could move to an uncovered vertex
    # Lazy: verification defers up to the solver layer; a module-level
    # import would invert the core -> solvers layering (LAY001).
    from repro.solvers.best_response import best_tuple

    weights = {v: 0.0 for v in game.graph.vertices()}
    for v in config.vertex_choices:
        weights[v] += 1.0
    _, optimum = best_tuple(game.graph, weights, game.k, method=method)
    return pure_profit_tp(config) >= optimum - 1e-9
