"""Pure and mixed configurations (strategy profiles) of ``Π_k(G)``.

Definition 2.1 calls a strategy profile a *configuration*: one vertex per
vertex player plus one k-edge tuple for the tuple player.  A *mixed*
configuration replaces each choice with a probability distribution.  This
module provides validated, immutable containers for both, together with the
support notation of the paper:

* ``D_s(vp_i)`` — :meth:`MixedConfiguration.vp_support`;
* ``D_s(VP) = ∪_i D_s(vp_i)`` — :meth:`MixedConfiguration.vp_support_union`;
* ``D_s(tp)`` — :meth:`MixedConfiguration.tp_support`;
* ``E(D_s(tp))`` — :meth:`MixedConfiguration.tp_support_edges`;
* ``Tuples_s(v)`` — :meth:`MixedConfiguration.tuples_containing`.

Probabilities are floats; constructors verify non-negativity and unit mass
(within ``PROB_TOL``) and renormalize exactly so that downstream payoff
algebra can assume clean distributions.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple, TypeVar

from repro.core.game import GameError, TupleGame
from repro.core.tuples import EdgeTuple, canonical_tuple, tuple_vertices
from repro.graphs.core import Edge, Vertex, tuple_sort_key, vertex_sort_key

__all__ = ["PureConfiguration", "MixedConfiguration", "PROB_TOL"]

PROB_TOL = 1e-9
"""Tolerance used when validating that probabilities sum to one."""

_RENORM_SKIP = 1e-12
"""Unit-mass slack below which renormalization is skipped entirely.

Far above float accumulation error (~1e-14 for the largest supports the
model sees), far below anything the payoff algebra can distinguish
(``PROB_TOL``), and the reason the renormalizing constructor is a
fixpoint on round-tripped documents."""


class PureConfiguration:
    """A pure strategy profile ``(s_1, ..., s_ν, s_tp)``.

    Examples
    --------
    >>> from repro.graphs.generators import path_graph
    >>> from repro.core.game import TupleGame
    >>> game = TupleGame(path_graph(4), k=2, nu=2)
    >>> config = PureConfiguration(game, [1, 3], [(0, 1), (2, 3)])
    >>> config.tuple_choice
    ((0, 1), (2, 3))
    """

    __slots__ = ("game", "vertex_choices", "tuple_choice")

    def __init__(
        self,
        game: TupleGame,
        vertex_choices: Sequence[Vertex],
        tuple_choice: Iterable[Edge],
    ) -> None:
        choices = tuple(vertex_choices)
        if len(choices) != game.nu:
            raise GameError(
                f"expected {game.nu} vertex choices, got {len(choices)}"
            )
        for v in choices:
            if not game.graph.has_vertex(v):
                raise GameError(f"vertex choice {v!r} is not a vertex of the graph")
        canon = canonical_tuple(tuple_choice)
        if len(canon) != game.k:
            raise GameError(
                f"the tuple player must pick exactly k={game.k} edges; got {len(canon)}"
            )
        for e in canon:
            if e not in game.graph.edges():
                raise GameError(f"tuple edge {e!r} is not an edge of the graph")
        self.game = game
        self.vertex_choices: Tuple[Vertex, ...] = choices
        self.tuple_choice: EdgeTuple = canon

    def covered_vertices(self) -> FrozenSet[Vertex]:
        """``V(s_tp)`` — endpoints protected by the defender's choice."""
        return tuple_vertices(self.tuple_choice)

    def __repr__(self) -> str:
        return (
            f"PureConfiguration(vertices={self.vertex_choices!r}, "
            f"tuple={self.tuple_choice!r})"
        )


_S = TypeVar("_S")
"""A strategy key: a vertex for the attackers, an edge tuple for the defender."""


def _validated_distribution(
    raw: Mapping[_S, float], kind: str
) -> Dict[_S, float]:
    """Drop zero entries, verify positivity and unit mass, renormalize."""
    # Exact-zero support pruning by design: values within PROB_TOL of zero
    # but non-zero must *fail* validation below, not silently vanish.
    support = {s: float(p) for s, p in raw.items() if p != 0.0}  # repro: noqa[FLT001]
    if not support:
        raise GameError(f"{kind} distribution has empty support")
    # NaN compares false to everything, so an explicit finiteness check is
    # required — otherwise a NaN probability would sail through both the
    # negativity and the unit-mass comparisons below.
    bad = [s for s, p in support.items() if not math.isfinite(p)]
    if bad:
        raise GameError(f"{kind} distribution has non-finite probabilities: {bad!r}")
    negative = [s for s, p in support.items() if p < 0.0]
    if negative:
        raise GameError(f"{kind} distribution has negative probabilities: {negative!r}")
    total = sum(support.values())
    if abs(total - 1.0) > PROB_TOL * max(1.0, len(support)):
        raise GameError(
            f"{kind} distribution must sum to 1; got {total!r}"
        )
    if abs(total - 1.0) <= _RENORM_SKIP:
        # Already unit mass to within accumulation noise.  Dividing here
        # anyway would perturb each probability by an ulp — and because
        # ``p / total`` summed is itself inexact, renormalization is not a
        # floating-point fixpoint: serialize → load → serialize would
        # drift bytes forever.  Preserving the given floats makes the
        # JSON round trip exact (caught by the repro.fuzz differential
        # harness).
        return support
    return {s: p / total for s, p in support.items()}


class MixedConfiguration:
    """A mixed strategy profile for ``Π_k(G)``.

    Parameters
    ----------
    game:
        The instance this profile belongs to.
    vp_distributions:
        One ``{vertex: probability}`` mapping per vertex player (length
        ``ν``).  Zero entries are dropped; the rest must be positive and
        sum to one.
    tp_distribution:
        ``{edge-tuple: probability}`` for the tuple player.  Keys may be
        any iterables of edges; they are canonicalized (and must therefore
        be distinct as edge sets).
    """

    __slots__ = ("game", "_vp", "_tp", "_tuples_by_vertex")

    def __init__(
        self,
        game: TupleGame,
        vp_distributions: Sequence[Mapping[Vertex, float]],
        tp_distribution: Mapping[Iterable[Edge], float],
    ) -> None:
        if len(vp_distributions) != game.nu:
            raise GameError(
                f"expected {game.nu} vertex-player distributions, "
                f"got {len(vp_distributions)}"
            )
        vp: List[Dict[Vertex, float]] = []
        for i, dist in enumerate(vp_distributions):
            clean = _validated_distribution(dist, f"vertex player {i}")
            for v in clean:
                if not game.graph.has_vertex(v):
                    raise GameError(
                        f"vertex player {i} assigns probability to non-vertex {v!r}"
                    )
            vp.append(clean)

        tp_raw: Dict[EdgeTuple, float] = {}
        for t, p in tp_distribution.items():
            canon = canonical_tuple(t)
            if len(canon) != game.k:
                raise GameError(
                    f"tuple {canon!r} has {len(canon)} edges; the game requires k={game.k}"
                )
            for e in canon:
                if e not in game.graph.edges():
                    raise GameError(f"tuple edge {e!r} is not an edge of the graph")
            if canon in tp_raw:
                raise GameError(f"tuple {canon!r} appears twice in the distribution")
            tp_raw[canon] = p
        tp = _validated_distribution(tp_raw, "tuple player")

        self.game = game
        self._vp: Tuple[Dict[Vertex, float], ...] = tuple(vp)
        self._tp: Dict[EdgeTuple, float] = tp

        # Tuples_s(v): the support tuples covering each vertex, precomputed
        # because hit probabilities query it repeatedly.
        tuples_by_vertex: Dict[Vertex, List[EdgeTuple]] = {}
        for t in self._tp:
            for v in tuple_vertices(t):
                tuples_by_vertex.setdefault(v, []).append(t)
        self._tuples_by_vertex = tuples_by_vertex

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pure(cls, pure: PureConfiguration) -> "MixedConfiguration":
        """Degenerate mixed configuration concentrating on a pure profile."""
        return cls(
            pure.game,
            [{v: 1.0} for v in pure.vertex_choices],
            {pure.tuple_choice: 1.0},
        )

    @classmethod
    def uniform(
        cls,
        game: TupleGame,
        vp_support: Iterable[Vertex],
        tp_support: Iterable[Iterable[Edge]],
    ) -> "MixedConfiguration":
        """The uniform profile of Lemma 4.1 / Lemma 2.1.

        Every vertex player plays uniformly on the same ``vp_support``;
        the tuple player plays uniformly on ``tp_support``.
        """
        vertices = sorted(set(vp_support), key=vertex_sort_key)
        if not vertices:
            raise GameError("vp_support must be non-empty")
        vp_dist = {v: 1.0 / len(vertices) for v in vertices}
        tuples = sorted({canonical_tuple(t) for t in tp_support}, key=tuple_sort_key)
        if not tuples:
            raise GameError("tp_support must be non-empty")
        tp_dist = {t: 1.0 / len(tuples) for t in tuples}
        return cls(game, [vp_dist] * game.nu, tp_dist)

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def prob_vp(self, i: int, v: Vertex) -> float:
        """``P_s(vp_i, v)``."""
        return self._vp[i].get(v, 0.0)

    def prob_tp(self, t: Iterable[Edge]) -> float:
        """``P_s(tp, t)``."""
        return self._tp.get(canonical_tuple(t), 0.0)

    def vp_distribution(self, i: int) -> Mapping[Vertex, float]:
        """Read-only view of vertex player ``i``'s distribution."""
        return dict(self._vp[i])

    def tp_distribution(self) -> Mapping[EdgeTuple, float]:
        """Read-only view of the tuple player's distribution."""
        return dict(self._tp)

    # ------------------------------------------------------------------
    # Supports
    # ------------------------------------------------------------------
    def vp_support(self, i: int) -> FrozenSet[Vertex]:
        """``D_s(vp_i)``."""
        return frozenset(self._vp[i])

    def vp_support_union(self) -> FrozenSet[Vertex]:
        """``D_s(VP) = ∪_i D_s(vp_i)``."""
        union: set = set()
        for dist in self._vp:
            union.update(dist)
        return frozenset(union)

    def tp_support(self) -> FrozenSet[EdgeTuple]:
        """``D_s(tp)``."""
        return frozenset(self._tp)

    def tp_support_edges(self) -> FrozenSet[Edge]:
        """``E(D_s(tp))`` — union of the support tuples' edges."""
        return frozenset(e for t in self._tp for e in t)

    def tp_support_vertices(self) -> FrozenSet[Vertex]:
        """``V(D_s(tp))`` — vertices covered by some support tuple."""
        return frozenset(self._tuples_by_vertex)

    def tuples_containing(self, v: Vertex) -> Tuple[EdgeTuple, ...]:
        """``Tuples_s(v)``: support tuples with ``v`` among their endpoints."""
        return tuple(self._tuples_by_vertex.get(v, ()))

    def __repr__(self) -> str:
        return (
            f"MixedConfiguration(nu={self.game.nu}, "
            f"vp_support={len(self.vp_support_union())}, "
            f"tp_support={len(self._tp)})"
        )
