"""Individual Profit functionals — equations (1) and (2) of the paper.

Pure profiles (Definition 2.1):

* vertex player ``i`` earns ``1`` iff its vertex avoids ``V(s_tp)``;
* the tuple player earns the number of attackers standing on ``V(s_tp)``.

Mixed profiles induce *Expected* Individual Profits, computed here exactly
from the distributions (no sampling — :mod:`repro.simulation` provides the
Monte-Carlo counterpart used to validate these formulas):

* ``IP_i(s) = Σ_v P_s(vp_i, v) · (1 − P_s(Hit(v)))``      — equation (1)
* ``IP_tp(s) = Σ_{t ∈ D_s(tp)} P_s(tp, t) · m_s(t)``      — equation (2)

with ``P_s(Hit(v)) = Σ_{t ∈ Tuples_s(v)} P_s(tp, t)`` the probability that
the defender covers ``v``, and ``m_s`` the expected attacker masses on
vertices / edges / tuples.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.tuples import EdgeTuple, canonical_tuple, tuple_vertices
from repro.graphs.core import Edge, Vertex, canonical_edge

__all__ = [
    "pure_profit_vp",
    "pure_profit_tp",
    "hit_probability",
    "vertex_mass",
    "edge_mass",
    "tuple_mass",
    "expected_profit_vp",
    "expected_profit_tp",
    "all_hit_probabilities",
    "all_vertex_masses",
]


# ----------------------------------------------------------------------
# Pure profits
# ----------------------------------------------------------------------
def pure_profit_vp(config: PureConfiguration, i: int) -> int:
    """``IP_i(s)`` for a pure profile: 1 iff attacker ``i`` escapes."""
    return 0 if config.vertex_choices[i] in config.covered_vertices() else 1


def pure_profit_tp(config: PureConfiguration) -> int:
    """``IP_tp(s)``: how many attackers stand on defended endpoints."""
    covered = config.covered_vertices()
    return sum(1 for v in config.vertex_choices if v in covered)


# ----------------------------------------------------------------------
# Masses and hit probabilities
# ----------------------------------------------------------------------
def hit_probability(config: MixedConfiguration, v: Vertex) -> float:
    """``P_s(Hit(v))`` — probability the defender's tuple covers ``v``."""
    return sum(config.prob_tp(t) for t in config.tuples_containing(v))


def all_hit_probabilities(config: MixedConfiguration) -> Dict[Vertex, float]:
    """``P_s(Hit(v))`` for every vertex of the graph (zero off-support)."""
    hits = {v: 0.0 for v in config.game.graph.vertices()}
    for t, p in config.tp_distribution().items():
        for v in tuple_vertices(t):
            hits[v] += p
    return hits


def vertex_mass(config: MixedConfiguration, v: Vertex) -> float:
    """``m_s(v) = Σ_i P_s(vp_i, v)`` — expected attackers on ``v``."""
    return sum(config.prob_vp(i, v) for i in range(config.game.nu))


def all_vertex_masses(config: MixedConfiguration) -> Dict[Vertex, float]:
    """``m_s(v)`` for every vertex (zero off-support)."""
    masses = {v: 0.0 for v in config.game.graph.vertices()}
    for i in range(config.game.nu):
        for v, p in config.vp_distribution(i).items():
            masses[v] += p
    return masses


def edge_mass(config: MixedConfiguration, edge: Edge) -> float:
    """``m_s(e) = m_s(u) + m_s(v)`` for ``e = (u, v)``."""
    u, v = canonical_edge(*edge)
    return vertex_mass(config, u) + vertex_mass(config, v)


def tuple_mass(config: MixedConfiguration, t: Iterable[Edge]) -> float:
    """``m_s(t) = Σ_{v ∈ V(t)} m_s(v)`` — expected attackers on the
    *distinct* endpoints of ``t`` (a vertex shared by two tuple edges is
    counted once, per the paper's definition of ``V(t)``)."""
    canon: EdgeTuple = canonical_tuple(t)
    return sum(vertex_mass(config, v) for v in tuple_vertices(canon))


# ----------------------------------------------------------------------
# Expected profits
# ----------------------------------------------------------------------
def expected_profit_vp(config: MixedConfiguration, i: int) -> float:
    """Equation (1): expected escape probability of vertex player ``i``."""
    return sum(
        p * (1.0 - hit_probability(config, v))
        for v, p in config.vp_distribution(i).items()
    )


def expected_profit_tp(config: MixedConfiguration) -> float:
    """Equation (2): expected number of attackers the defender catches."""
    return sum(
        p * tuple_mass(config, t) for t, p in config.tp_distribution().items()
    )
