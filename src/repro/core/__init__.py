"""Game core: the Tuple model ``Π_k(G)``, its configurations and profits.

This package is the paper's primary object of study — Definition 2.1,
the profit functionals (equations (1)–(2)), pure Nash equilibria
(Theorem 3.1) and the mixed-NE characterization (Theorem 3.4).
"""

from repro.core.characterization import (
    CharacterizationReport,
    check_characterization,
    is_mixed_nash,
    verify_best_responses,
)
from repro.core.configuration import PROB_TOL, MixedConfiguration, PureConfiguration
from repro.core.deviation import (
    AttackerDeviation,
    DefenderDeviation,
    best_attacker_deviation,
    best_defender_deviation,
    exploitability,
)
from repro.core.serialize import (
    configuration_from_json,
    configuration_to_json,
    solve_result_to_json,
)
from repro.core.game import GameError, TupleGame
from repro.core.profits import (
    all_hit_probabilities,
    all_vertex_masses,
    edge_mass,
    expected_profit_tp,
    expected_profit_vp,
    hit_probability,
    pure_profit_tp,
    pure_profit_vp,
    tuple_mass,
    vertex_mass,
)
from repro.core.pure import (
    edge_cover_of_size,
    find_pure_nash,
    is_pure_nash,
    pure_nash_exists,
)
from repro.core.tuples import (
    EdgeTuple,
    all_tuples,
    canonical_tuple,
    count_tuples,
    tuple_edges,
    tuple_vertices,
)

__all__ = [
    "CharacterizationReport",
    "check_characterization",
    "is_mixed_nash",
    "verify_best_responses",
    "PROB_TOL",
    "MixedConfiguration",
    "PureConfiguration",
    "AttackerDeviation",
    "DefenderDeviation",
    "best_attacker_deviation",
    "best_defender_deviation",
    "exploitability",
    "configuration_from_json",
    "configuration_to_json",
    "solve_result_to_json",
    "GameError",
    "TupleGame",
    "all_hit_probabilities",
    "all_vertex_masses",
    "edge_mass",
    "expected_profit_tp",
    "expected_profit_vp",
    "hit_probability",
    "pure_profit_tp",
    "pure_profit_vp",
    "tuple_mass",
    "vertex_mass",
    "edge_cover_of_size",
    "find_pure_nash",
    "is_pure_nash",
    "pure_nash_exists",
    "EdgeTuple",
    "all_tuples",
    "canonical_tuple",
    "count_tuples",
    "tuple_edges",
    "tuple_vertices",
]
