"""Canonical k-tuples of edges — the defender's strategy objects.

Definition 2.1 gives the tuple player the strategy set ``E^k``: all tuples
of ``k`` *distinct* edges of ``G``.  Order inside a tuple never affects any
payoff (only the endpoint set ``V(t)`` and the edge set ``E(t)`` matter), so
the library canonicalizes every tuple as a sorted ``tuple`` of canonical
edges; two strategies are "the same tuple" exactly when their edge sets
coincide.  This keeps supports, probability dictionaries and condition (3)
of Definition 4.1 ("each edge belongs to an equal number of *distinct*
tuples") unambiguous.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import FrozenSet, Iterable, Iterator, Tuple

from repro.graphs.core import (
    Edge,
    Graph,
    GraphError,
    Vertex,
    canonical_edge,
    edge_sort_key,
)

__all__ = [
    "EdgeTuple",
    "canonical_tuple",
    "tuple_vertices",
    "tuple_edges",
    "all_tuples",
    "count_tuples",
]

EdgeTuple = Tuple[Edge, ...]
"""A defender pure strategy: sorted tuple of ``k`` distinct canonical edges."""


def canonical_tuple(edges: Iterable[Edge]) -> EdgeTuple:
    """Canonicalize an iterable of edges into an :data:`EdgeTuple`.

    Edges are canonicalized individually, deduplicated (duplicates raise,
    since the model demands *distinct* edges) and sorted.

    Raises
    ------
    GraphError
        If the tuple is empty or contains a repeated edge.
    """
    listed = [canonical_edge(u, v) for u, v in edges]
    canon = sorted(set(listed), key=edge_sort_key)
    if len(canon) != len(listed):
        raise GraphError("a tuple must consist of distinct edges")
    if not canon:
        raise GraphError("a tuple must contain at least one edge")
    return tuple(canon)


def tuple_vertices(t: EdgeTuple) -> FrozenSet[Vertex]:
    """``V(t)``: the distinct endpoints of the tuple's edges."""
    return frozenset(v for e in t for v in e)


def tuple_edges(t: EdgeTuple) -> FrozenSet[Edge]:
    """``E(t)``: the tuple's edges as a set."""
    return frozenset(t)


def all_tuples(graph: Graph, k: int) -> Iterator[EdgeTuple]:
    """Enumerate ``E^k``, the full defender strategy set, canonically.

    ``C(m, k)`` strategies — intended for small instances (exact solvers,
    exhaustive verification); structural algorithms never enumerate this.
    """
    if not 1 <= k <= graph.m:
        raise GraphError(f"k must satisfy 1 <= k <= m={graph.m}; got {k}")
    yield from combinations(graph.sorted_edges(), k)


def count_tuples(graph: Graph, k: int) -> int:
    """``|E^k| = C(m, k)`` without enumeration."""
    if not 1 <= k <= graph.m:
        raise GraphError(f"k must satisfy 1 <= k <= m={graph.m}; got {k}")
    return comb(graph.m, k)
