"""Deterministic scan rosters from mixed defender strategies.

A mixed equilibrium tells the operator to play tuple ``t`` with
probability ``p_t`` — but real scanners run from cron, not from coin
flips, and operators also want coverage to be *even in time* (no long
droughts for any tuple).  This module compiles a mixed strategy into a
fixed-length deterministic roster whose empirical frequencies match the
probabilities as closely as possible:

* :func:`compile_roster` — largest-remainder apportionment of the roster
  slots, then interleaving by smallest *fractional lag* (Jefferson/
  Webster-style sequencing): at every prefix, each tuple's play count is
  within one of its expected count ``p_t · prefix_length``.
* :func:`roster_discrepancy` — the maximum such prefix deviation, the
  quantity the interleaving minimizes.

Caveat, stated plainly: a *deterministic* roster is predictable, so
against an adaptive attacker (see :mod:`repro.simulation.adaptive`) it
must be re-randomized — e.g. rotate the starting offset or re-sample each
period.  The roster preserves the *long-run frequencies*, which is what
the equilibrium guarantee needs when the attacker cannot observe phase.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.configuration import MixedConfiguration
from repro.core.game import GameError
from repro.core.tuples import EdgeTuple
from repro.graphs.core import Graph, Vertex, tuple_sort_key
from repro.kernels.coverage import shared_oracle

__all__ = [
    "best_response_schedule",
    "compile_roster",
    "roster_discrepancy",
    "roster_frequencies",
]


def _apportion(probabilities: Dict[EdgeTuple, float], length: int) -> Dict[EdgeTuple, int]:
    """Largest-remainder apportionment of ``length`` slots."""
    quotas = {t: p * length for t, p in probabilities.items()}
    counts = {t: int(q) for t, q in quotas.items()}
    remaining = length - sum(counts.values())
    by_remainder = sorted(
        quotas, key=lambda t: (-(quotas[t] - counts[t]), tuple_sort_key(t))
    )
    for t in by_remainder[:remaining]:
        counts[t] += 1
    return counts


def best_response_schedule(
    graph: Graph,
    k: int,
    weight_profiles: Sequence[Mapping[Vertex, float]],
    method: str = "auto",
    processes: Optional[int] = None,
) -> List[Tuple[EdgeTuple, float]]:
    """Best defender tuples for a sweep of attacker weight profiles.

    Operators planning rosters against *forecast* attacker behaviour (one
    weight profile per period — shift, day, threat level) need the best
    response to every profile; answering them against one shared
    :class:`~repro.kernels.coverage.CoverageOracle` amortizes the graph
    precompute across the whole sweep, and ``processes > 1`` fans the
    batch out over a ``multiprocessing`` pool for the long benchmark-zoo
    schedules.  Returns ``(tuple, coverage_value)`` pairs in profile
    order; ``method`` follows the
    :func:`repro.solvers.best_response.best_tuple` contract.

    Raises :class:`~repro.core.game.GameError` when the sweep is empty
    (an empty roster has no meaning downstream).
    """
    if not weight_profiles:
        raise GameError("best_response_schedule needs at least one profile")
    oracle = shared_oracle(graph, k)
    return oracle.query_many(
        weight_profiles, method=method, processes=processes
    )


def compile_roster(
    config: MixedConfiguration, length: int
) -> List[EdgeTuple]:
    """Compile the defender's mixed strategy into a ``length``-slot roster.

    Slot counts follow largest-remainder apportionment of the tuple
    probabilities; the sequence order greedily plays whichever tuple is
    furthest *behind* its expected share, which keeps every prefix within
    one play of proportionality.

    Raises :class:`~repro.core.game.GameError` when the roster is shorter
    than the support (some tuple would never be played).
    """
    probabilities = config.tp_distribution()
    if length < len(probabilities):
        raise GameError(
            f"a roster of {length} slots cannot represent a support of "
            f"{len(probabilities)} tuples"
        )
    counts = _apportion(probabilities, length)
    # Greedy sequencing by largest deficit p_t*(i+1) - played_t.
    played: Dict[EdgeTuple, int] = {t: 0 for t in counts}
    roster: List[EdgeTuple] = []
    for slot in range(1, length + 1):
        candidates = [t for t in counts if played[t] < counts[t]]
        best = max(
            candidates,
            key=lambda t: (probabilities[t] * slot - played[t], t),
        )
        played[best] += 1
        roster.append(best)
    return roster


def roster_frequencies(roster: Sequence[EdgeTuple]) -> Dict[EdgeTuple, float]:
    """Empirical play frequencies of a roster."""
    if not roster:
        raise GameError("cannot compute frequencies of an empty roster")
    counts: Dict[EdgeTuple, int] = {}
    for t in roster:
        counts[t] = counts.get(t, 0) + 1
    return {t: c / len(roster) for t, c in counts.items()}


def roster_discrepancy(
    roster: Sequence[EdgeTuple], config: MixedConfiguration
) -> float:
    """Maximum prefix deviation ``|played_t(i) − p_t · i|`` over all
    prefixes ``i`` and tuples ``t`` — the evenness-in-time measure."""
    probabilities = config.tp_distribution()
    played: Dict[EdgeTuple, int] = {t: 0 for t in probabilities}
    worst = 0.0
    for i, t in enumerate(roster, start=1):
        if t not in played:
            raise GameError(f"roster plays {t!r}, which is off-support")
        played[t] += 1
        for s, p in probabilities.items():
            worst = max(worst, abs(played[s] - p * i))
    return worst
