"""One-shot security report for a network.

Bundles the library's analyses into a single plain-text document a
security operator can read top to bottom: topology facts, the pure-NE
threshold, the gain/price profile across defender power, the equilibrium
at a chosen operating point, the optimal-polytope facts (which hosts
rational attackers can use, which links every optimal schedule must
scan), and a Monte-Carlo validation run.

Exposed on the CLI as ``repro-defender report``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.defense import defense_profile
from repro.analysis.gain import fit_slope_through_origin, gain_curve
from repro.analysis.tables import Table
from repro.core.game import TupleGame
from repro.core.profits import expected_profit_tp, hit_probability
from repro.equilibria.solve import NoEquilibriumFoundError, solve_game
from repro.graphs.core import Graph, vertex_sort_key
from repro.graphs.properties import is_bipartite, max_degree, min_degree
from repro.matching.blossom import matching_number
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.engine import simulate

__all__ = ["security_report"]

_RANGES_TUPLE_LIMIT = 20_000


def _topology_section(graph: Graph, lines: List[str]) -> int:
    from repro.graphs.metrics import density, diameter, girth
    from repro.graphs.properties import is_connected

    rho = minimum_edge_cover_size(graph)
    table = Table(["property", "value"])
    table.add_row(["hosts (n)", graph.n])
    table.add_row(["links (m)", graph.m])
    table.add_row(["degree range", f"{min_degree(graph)}..{max_degree(graph)}"])
    table.add_row(["density", density(graph)])
    if is_connected(graph):
        table.add_row(["diameter (hops)", diameter(graph)])
    shortest_cycle = girth(graph)
    table.add_row(["girth", "acyclic" if shortest_cycle is None else shortest_cycle])
    table.add_row(["bipartite", is_bipartite(graph)])
    table.add_row(["maximum matching", matching_number(graph)])
    table.add_row(["minimum edge cover rho(G)", rho])
    table.add_row(["full lockdown needs k >=", rho])
    lines.append(table.render(title="1. Topology"))
    return rho


def _profile_section(graph: Graph, nu: int, lines: List[str]) -> None:
    points = defense_profile(graph, nu)
    table = Table(["k", "equilibrium", "expected catches", "price nu/IP_tp"])
    gain_points = []
    for p in points:
        gain_points.append(p)
        table.add_row([p.k, p.kind, nu / p.price, p.price])
    lines.append(table.render(title=f"2. Defender power profile (nu = {nu})"))
    mixed = [
        g for g in gain_curve(graph, nu) if g.kind in ("k-matching",)
    ]
    if mixed:
        slope = fit_slope_through_origin(mixed)
        lines.append(
            f"marginal value of one extra scanned link: {slope:.4f} "
            "expected catches per round (linear gain law, Theorem 4.5)"
        )


def _operating_point_section(
    graph: Graph, k: int, nu: int, trials: int, seed: int, lines: List[str]
) -> None:
    game = TupleGame(graph, k, nu)
    result = solve_game(game, seed=seed)
    config = result.mixed
    lines.append(f"3. Operating point k = {k}")
    lines.append(f"   equilibrium kind : {result.kind}")
    lines.append(f"   expected catches : {result.defender_gain:.4f} of {nu}")
    if result.kind != "pure":
        support = sorted(config.vp_support_union(), key=vertex_sort_key)
        lines.append(f"   attacker support : {support}")
        lines.append(
            f"   interception rate: "
            f"{hit_probability(config, support[0]):.4f} per attacker"
        )
        lines.append(
            f"   scan schedule    : {len(config.tp_support())} line(s), "
            "uniform rotation"
        )
    if trials > 0:
        sim = simulate(game, config, trials=trials, seed=seed)
        low, high = sim.defender_profit.confidence_interval()
        verdict = "confirmed" if low <= expected_profit_tp(config) <= high else "OUTSIDE CI"
        lines.append(
            f"   simulation       : {sim.defender_profit.mean:.4f} catches/round "
            f"over {trials} trials (95% CI [{low:.4f}, {high:.4f}]) — {verdict}"
        )


def _polytope_section(graph: Graph, k: int, lines: List[str]) -> None:
    from repro.solvers.ranges import attacker_vertex_ranges, defender_edge_ranges

    game = TupleGame(graph, k, nu=1)
    if game.tuple_strategy_count() > _RANGES_TUPLE_LIMIT:
        lines.append(
            "4. Optimal-polytope analysis skipped "
            f"(C(m, k) > {_RANGES_TUPLE_LIMIT})"
        )
        return
    attacker = attacker_vertex_ranges(game, tuple_limit=_RANGES_TUPLE_LIMIT)
    defender = defender_edge_ranges(game, tuple_limit=_RANGES_TUPLE_LIMIT)
    safe = sorted(
        graph.vertices() - set(attacker.usable()), key=vertex_sort_key
    )
    lines.append("4. Optimal-polytope analysis")
    lines.append(
        f"   hosts rational attackers may use : {attacker.usable()}"
    )
    lines.append(f"   hosts no rational attacker uses  : {safe}")
    mandatory = defender.required()
    lines.append(
        "   links every optimal schedule scans (with positive probability): "
        + (", ".join(f"{u}-{v}" for u, v in mandatory) if mandatory else "none")
    )


def security_report(
    graph: Graph,
    k: int,
    nu: int = 1,
    trials: int = 20_000,
    seed: int = 0,
) -> str:
    """Produce the full plain-text security report.

    Raises :class:`~repro.equilibria.solve.NoEquilibriumFoundError` when
    the operating point cannot be solved structurally (the report's
    profile section would be empty anyway).
    """
    lines: List[str] = [
        "NETWORK SECURITY GAME REPORT",
        "(model: 'The Power of the Defender', ICDCS 2006)",
        "",
    ]
    _topology_section(graph, lines)
    lines.append("")
    _profile_section(graph, nu, lines)
    lines.append("")
    _operating_point_section(graph, k, nu, trials, seed, lines)
    lines.append("")
    _polytope_section(graph, k, lines)
    return "\n".join(lines)
