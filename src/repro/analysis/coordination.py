"""The value of coordination: one k-edge defender vs k lone scanners.

The paper's Tuple model gives *one* defender ``k`` links per round.  An
operationally tempting alternative deploys ``k`` independent scanners,
each picking one link per round from the same marginal distribution —
no coordination, possible collisions.  How much protection does the
coordination of the Tuple model buy?

Closed form for the structural schedules: at a k-matching (or perfect-
matching) equilibrium the coordinated defender hits every support vertex
with probability exactly ``k/ρ`` (Claim 4.3).  ``k`` independent scanners
drawing from the Edge-model equilibrium marginals hit it with probability
``1 − (1 − 1/ρ)^k`` — strictly less for ``k ≥ 2``, because independent
draws waste probability on collisions.  The gap

    ``k/ρ − (1 − (1 − 1/ρ)^k)``

is the *price of no coordination*; it grows roughly quadratically in
``k/ρ`` (second-order term ``C(k,2)/ρ²``).  This module computes both
sides analytically and by simulation, and experiment E14 tabulates them.

Scope note: this compares *schedules*, holding the attacker at the
structural support; it is not an equilibrium analysis of a k-player
defender game (whose strategic form is a different model).
"""

from __future__ import annotations

import random

from repro.core.game import GameError, TupleGame
from repro.equilibria.solve import solve_game
from repro.graphs.core import Graph
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.engine import Sampler

__all__ = [
    "coordinated_hit_probability",
    "uncoordinated_hit_probability",
    "coordination_gap",
    "simulate_uncoordinated",
]


def coordinated_hit_probability(graph: Graph, k: int) -> float:
    """Per-attacker hit probability of the Tuple-model defender: ``k/ρ``
    (Claim 4.3 with ``|E(D(tp))| = ρ(G)``)."""
    rho = minimum_edge_cover_size(graph)
    if k > rho:
        return 1.0
    return k / rho


def uncoordinated_hit_probability(graph: Graph, k: int) -> float:
    """Per-attacker hit probability of ``k`` independent lone scanners,
    each drawing uniformly from the ρ-edge structural cover:
    ``1 − (1 − 1/ρ)^k``."""
    rho = minimum_edge_cover_size(graph)
    return 1.0 - (1.0 - 1.0 / rho) ** k


def coordination_gap(graph: Graph, k: int) -> float:
    """``k/ρ − (1 − (1 − 1/ρ)^k)`` — protection lost without coordination.

    Zero at ``k = 1``, positive for ``2 ≤ k ≤ ρ``.
    """
    return coordinated_hit_probability(graph, k) - uncoordinated_hit_probability(
        graph, k
    )


def simulate_uncoordinated(
    graph: Graph, k: int, trials: int = 20_000, seed: int = 0
) -> float:
    """Monte-Carlo estimate of the uncoordinated hit probability.

    Plays the Edge-model structural equilibrium: one attacker on the
    equilibrium support, ``k`` scanners independently sampling the
    Edge-model defender mixture; returns the empirical catch rate.
    """
    if trials < 1:
        raise GameError("at least one trial is required")
    edge_game = TupleGame(graph, 1, nu=1)
    result = solve_game(edge_game)
    config = result.mixed
    rng = random.Random(seed)
    attacker_sampler = Sampler(config.vp_distribution(0))
    scanner_sampler = Sampler(config.tp_distribution())
    caught = 0
    for _ in range(trials):
        target = attacker_sampler.sample(rng)
        for _ in range(k):
            (edge,) = scanner_sampler.sample(rng)
            if target in edge:
                caught += 1
                break
    return caught / trials
