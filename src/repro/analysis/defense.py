"""Price of Defense: how far an equilibrium sits from full protection.

A natural quality measure for the equilibria of the paper (studied for
this game family in the authors' follow-up literature): the **Price of
Defense** of an equilibrium is ``ν / IP_tp`` — how many attackers roam per
attacker caught.  Smaller is better; ``1`` means total interception (the
pure regime).  At the structural equilibria of Section 4 it has the clean
closed form ``ρ(G) / k``, independent of ``ν`` — the dual reading of the
paper's linear gain law: doubling the defender's power halves the price.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.game import TupleGame
from repro.equilibria.solve import SolveResult, solve_game
from repro.graphs.core import Graph
from repro.matching.covers import minimum_edge_cover_size

__all__ = ["price_of_defense", "predicted_price_of_defense", "defense_profile", "DefensePoint"]


def price_of_defense(game: TupleGame, result: SolveResult) -> float:
    """``ν / IP_tp`` at a solved equilibrium."""
    if result.defender_gain <= 0:
        raise ValueError("price of defense undefined for zero defender gain")
    return game.nu / result.defender_gain


def predicted_price_of_defense(graph: Graph, k: int) -> float:
    """The closed form ``max(1, ρ(G)/k)`` for the structural equilibria."""
    return max(1.0, minimum_edge_cover_size(graph) / k)


class DefensePoint:
    """One row of a defense profile: k vs price."""

    __slots__ = ("k", "kind", "price", "predicted")

    def __init__(self, k: int, kind: str, price: float, predicted: float) -> None:
        self.k = k
        self.kind = kind
        self.price = price
        self.predicted = predicted

    def __repr__(self) -> str:
        return f"DefensePoint(k={self.k}, price={self.price:.4f})"


def defense_profile(
    graph: Graph, nu: int, ks: Iterable[int] = None, seed: int = 0
) -> List[DefensePoint]:
    """Sweep ``k`` and report the price of defense at each equilibrium.

    Uses the full solver (paper machinery plus extension families); the
    ``predicted`` column is the ``ρ/k`` closed form, which matches
    whenever the equilibrium kind preserves the gain law.
    """
    rho = minimum_edge_cover_size(graph)
    if ks is None:
        ks = range(1, min(rho + 1, graph.m + 1))
    points: List[DefensePoint] = []
    for k in ks:
        game = TupleGame(graph, k, nu)
        result = solve_game(game, seed=seed)
        points.append(
            DefensePoint(
                k,
                result.kind,
                price_of_defense(game, result),
                predicted_price_of_defense(graph, k),
            )
        )
    return points
