"""Analysis helpers: gain sweeps, Price of Defense, rosters, reports,
coordination comparisons, and the ASCII tables the harness prints."""

from repro.analysis.coordination import (
    coordinated_hit_probability,
    coordination_gap,
    simulate_uncoordinated,
    uncoordinated_hit_probability,
)
from repro.analysis.defense import (
    DefensePoint,
    defense_profile,
    predicted_price_of_defense,
    price_of_defense,
)
from repro.analysis.gain import (
    GainPoint,
    fit_slope_through_origin,
    gain_curve,
    max_linearity_residual,
)
from repro.analysis.report import security_report
from repro.analysis.schedule import (
    best_response_schedule,
    compile_roster,
    roster_discrepancy,
    roster_frequencies,
)
from repro.analysis.tables import Table, format_number

__all__ = [
    "coordinated_hit_probability",
    "coordination_gap",
    "simulate_uncoordinated",
    "uncoordinated_hit_probability",
    "DefensePoint",
    "defense_profile",
    "predicted_price_of_defense",
    "price_of_defense",
    "GainPoint",
    "fit_slope_through_origin",
    "gain_curve",
    "max_linearity_residual",
    "security_report",
    "best_response_schedule",
    "compile_roster",
    "roster_discrepancy",
    "roster_frequencies",
    "Table",
    "format_number",
]
