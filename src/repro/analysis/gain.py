"""Defender-gain analysis: the paper's headline linear-in-k law.

Section 1.2 ("the gain of the defender ... is linear to the parameter k")
is quantified by Corollaries 4.7/4.10: at the structural equilibria the
defender earns ``k · ν / ρ(G)`` where ``ρ(G) = |IS| = n − ν(G)`` is the
minimum-edge-cover size.  This module sweeps ``k`` on a fixed instance,
records analytic / LP / simulated gains, and fits the through-origin slope
so benchmark E6 can report "slope ≈ ν/ρ(G), residual ≈ 0".
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from repro.core.game import TupleGame
from repro.graphs.core import Graph
from repro.equilibria.solve import solve_game
from repro.matching.covers import minimum_edge_cover_size

__all__ = ["GainPoint", "gain_curve", "fit_slope_through_origin", "max_linearity_residual"]


class GainPoint:
    """One sweep sample: defender power vs equilibrium gain."""

    __slots__ = ("k", "kind", "gain", "lp_gain", "simulated_gain")

    def __init__(
        self,
        k: int,
        kind: str,
        gain: float,
        lp_gain: Optional[float] = None,
        simulated_gain: Optional[float] = None,
    ) -> None:
        self.k = k
        self.kind = kind
        self.gain = gain
        self.lp_gain = lp_gain
        self.simulated_gain = simulated_gain

    def __repr__(self) -> str:
        return f"GainPoint(k={self.k}, kind={self.kind!r}, gain={self.gain:.4f})"


def gain_curve(
    graph: Graph,
    nu: int,
    ks: Optional[Iterable[int]] = None,
    include_lp: bool = False,
    lp_tuple_limit: int = 50_000,
    seed: int = 0,
) -> List[GainPoint]:
    """Sweep ``k`` and record the defender's equilibrium gain.

    ``ks`` defaults to the whole mixed regime ``1 .. ρ(G) − 1`` plus the
    first pure point ``ρ(G)``.  With ``include_lp=True`` each point also
    carries the exact LP gain (skipped silently where ``C(m,k)`` exceeds
    ``lp_tuple_limit``).
    """
    rho = minimum_edge_cover_size(graph)
    if ks is None:
        ks = range(1, min(rho + 1, graph.m + 1))
    points: List[GainPoint] = []
    for k in ks:
        game = TupleGame(graph, k, nu)
        result = solve_game(game, seed=seed)
        lp_gain: Optional[float] = None
        if include_lp and game.tuple_strategy_count() <= lp_tuple_limit:
            from repro.solvers.lp import lp_defender_gain

            lp_gain = lp_defender_gain(game, tuple_limit=lp_tuple_limit)
        points.append(GainPoint(k, result.kind, result.defender_gain, lp_gain))
    return points


def fit_slope_through_origin(points: Iterable[GainPoint]) -> float:
    """Least-squares slope of gain vs k with zero intercept.

    At the paper's equilibria the mixed-regime points satisfy
    ``gain = (ν/ρ) · k`` exactly, so the fitted slope equals ``ν/ρ``.
    """
    num = 0.0
    den = 0.0
    for p in points:
        num += p.k * p.gain
        den += p.k * p.k
    if math.isclose(den, 0.0, abs_tol=1e-12):
        raise ValueError("cannot fit a slope through no points")
    return num / den


def max_linearity_residual(points: Iterable[GainPoint], slope: float) -> float:
    """Largest absolute deviation from the fitted line — 0 when the gain
    law holds exactly."""
    return max((abs(p.gain - slope * p.k) for p in points), default=0.0)
