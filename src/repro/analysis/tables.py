"""ASCII table rendering for the benchmark harness.

Every experiment in EXPERIMENTS.md regenerates its rows through this tiny
formatter, so the printed output of ``pytest benchmarks/`` is uniform and
diff-able against the recorded tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["Table", "format_number"]

Cell = Union[str, int, float]


def format_number(value: Cell, precision: int = 4) -> str:
    """Render a cell: floats to fixed precision, ints verbatim."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A fixed-column ASCII table.

    Examples
    --------
    >>> t = Table(["k", "gain"])
    >>> t.add_row([1, 0.5])
    >>> print(t.render())
    k | gain
    --+-------
    1 | 0.5000
    """

    def __init__(self, headers: Sequence[str], precision: int = 4) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []
        self.precision = precision

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; must match the header arity."""
        rendered = [format_number(c, self.precision) for c in cells]
        if len(rendered) != len(self.headers):
            raise ValueError(
                f"row has {len(rendered)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(rendered)

    def render(self, title: str = "") -> str:
        """The formatted table (optionally preceded by a title line)."""
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in self.rows
        ]
        lines = ([title] if title else []) + [header, rule] + body
        return "\n".join(line.rstrip() for line in lines)

    def __len__(self) -> int:
        return len(self.rows)
