"""Semantic rules over the phase-1 project index: LCK/DET/EXC/SCH.

These rules judge the whole program — the call graph, the lock-context
dataflow and the schema literals collected by
:mod:`repro.lint.callgraph` / :mod:`repro.lint.semantics` — rather than
one file's syntax:

* **LCK001** — a lock-associated shared variable is read or written
  without its guarding lock held;
* **LCK002** — a non-reentrant lock is (directly or transitively)
  re-acquired while already held: a guaranteed self-deadlock;
* **DET001** — a public solver/fuzz entry point can reach unseeded RNG
  or wall-clock reads through the call graph;
* **EXC001** — instrumentation whose cleanup an exception can skip
  (discarded span/timer context managers, enable/release pairs without
  ``try/finally``);
* **SCH001** — ``repro.obs/<family>/v<N>`` schema-version literals
  disagree between writers, readers, tools and docs.

EXC001 is syntactic in mechanism but lives here because it polices the
same instrumentation layer the lock rules protect.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    FileContext,
    LintConfig,
    Rule,
    SemanticRule,
    register,
)
from repro.lint.findings import Finding, Severity
from repro.lint.semantics import LockId, ModuleLockSummary, scan_schema_mentions

__all__ = [
    "LockDiscipline",
    "LockSelfDeadlock",
    "DeterminismReachability",
    "InstrumentationCleanup",
    "SchemaVersionDrift",
]


def _module_matches(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module.startswith(p) if p.endswith(".") else module == p
        for p in prefixes
    )


def _source_line(index, relpath: str, line: int) -> str:
    ctx = index.contexts.get(relpath)
    if ctx is not None and 1 <= line <= len(ctx.lines):
        return ctx.lines[line - 1]
    return ""


def _held_at(index, site) -> FrozenSet[LockId]:
    """Locks held at a call site: lexical plus the caller's must-hold."""
    return site.held | index.must_hold.get(site.caller, frozenset())


def _relpath_of(index, func_key: str) -> Optional[str]:
    module = func_key.partition(":")[0]
    syms = index.symbols.get(module)
    return syms.relpath if syms else None


def _fmt_path(path: List[str]) -> str:
    return " -> ".join(key.partition(":")[2] or key for key in path)


# --------------------------------------------------------------------------
# LCK001 — guarded state touched without its lock
# --------------------------------------------------------------------------


@register
class LockDiscipline(SemanticRule):
    """LCK001: lock-associated shared state only moves under its lock.

    A variable becomes *lock-associated* through an explicit
    ``# repro: lock(<name>)`` comment on its assignment, or by inference
    when the clear majority of its access sites already hold one
    particular lock.  Every other read/write of it must then hold that
    lock — lexically (inside ``with <lock>:``) or inherited, because
    every call site of the (private, non-escaping) enclosing function
    provably holds it.  Construction-time accesses (module level,
    ``__init__``) are exempt; deliberate benign races take a
    ``# repro: noqa[LCK001]`` with a justification.
    """

    id = "LCK001"
    name = "lock-discipline"
    description = ("reads/writes of lock-associated shared state must "
                   "hold the guarding lock")
    severity = Severity.ERROR

    def analyze(self, index, config: LintConfig) -> Iterator[Finding]:
        for module in sorted(index.locks):
            summary: ModuleLockSummary = index.locks[module]
            for lineno, message in summary.problems:
                yield self.finding(
                    summary.relpath, lineno, message,
                    _source_line(index, summary.relpath, lineno))
            guards = {var.var: var for var in summary.guarded_vars()}
            if not guards:
                continue
            for acc in summary.accesses:
                var = guards.get(acc.var)
                if var is None or acc.exempt:
                    continue
                if var.lock in acc.held_effective:
                    continue
                how = "inferred from usage" if var.inferred \
                    else "annotated with `# repro: lock(...)`"
                action = "write to" if acc.is_write else "read of"
                lock_disp = summary.locks[var.lock].display \
                    if var.lock in summary.locks else var.lock[2]
                yield self.finding(
                    summary.relpath, acc.lineno,
                    f"{action} `{var.display}` without holding "
                    f"`{lock_disp}` ({how}); wrap the access in "
                    f"`with {lock_disp}:` or noqa a deliberate benign race",
                    _source_line(index, summary.relpath, acc.lineno),
                    col=acc.col)


# --------------------------------------------------------------------------
# LCK002 — self-deadlock on a non-reentrant lock
# --------------------------------------------------------------------------


@register
class LockSelfDeadlock(SemanticRule):
    """LCK002: never re-acquire a held non-reentrant ``threading.Lock``.

    Flags a ``with <lock>:`` that runs while the same lock is already
    held — either lexically nested, or because a call made under the
    lock transitively reaches a function that acquires it again.  A
    plain ``threading.Lock`` is not reentrant, so this is a guaranteed
    deadlock of the calling thread, the kind of bug that only fires
    under production concurrency.  ``RLock`` acquisitions are exempt.
    """

    id = "LCK002"
    name = "lock-self-deadlock"
    description = ("a non-reentrant lock must not be re-acquired while "
                   "already held (self-deadlock)")
    severity = Severity.ERROR

    def analyze(self, index, config: LintConfig) -> Iterator[Finding]:
        # lock -> functions that lexically acquire it.
        acquirers: Dict[LockId, Set[str]] = {}
        reentrant: Set[LockId] = set()
        for summary in index.locks.values():
            for info in summary.locks.values():
                if info.reentrant:
                    reentrant.add(info.lock)
            for site in summary.acquires:
                acquirers.setdefault(site.lock, set()).add(site.func)

        # Direct lexical nesting.
        for module in sorted(index.locks):
            summary = index.locks[module]
            for site in summary.acquires:
                if site.lock in reentrant:
                    continue
                held = site.held_before | \
                    index.must_hold.get(site.func, frozenset())
                if site.lock in held:
                    disp = summary.locks[site.lock].display \
                        if site.lock in summary.locks else site.lock[2]
                    yield self.finding(
                        summary.relpath, site.lineno,
                        f"`with {disp}:` while `{disp}` is already held "
                        "— threading.Lock is not reentrant, this "
                        "deadlocks the calling thread",
                        _source_line(index, summary.relpath, site.lineno))

        # Transitive: a call made under the lock reaches an acquirer.
        seen: Set[Tuple[str, int, LockId]] = set()
        for site in index.graph.sites:
            held = _held_at(index, site)
            if not held:
                continue
            for lock in sorted(held):
                if lock in reentrant:
                    continue
                targets = acquirers.get(lock)
                if not targets:
                    continue
                path = index.graph.find_path(
                    site.callee, lambda key: key in targets)
                if path is None:
                    continue
                relpath = _relpath_of(index, site.caller)
                if relpath is None:
                    continue
                key = (site.caller, site.lineno, lock)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    relpath, site.lineno,
                    f"call made while holding `{lock[1] or ''}"
                    f"{'.' if lock[1] else ''}{lock[2]}` reaches "
                    f"`{path[-1].partition(':')[2]}` which re-acquires it "
                    f"({_fmt_path(path)}); threading.Lock is not "
                    "reentrant, this deadlocks",
                    _source_line(index, relpath, site.lineno))


# --------------------------------------------------------------------------
# DET001 — determinism reachability
# --------------------------------------------------------------------------


@register
class DeterminismReachability(SemanticRule):
    """DET001: no call path from an entry point to hidden nondeterminism.

    RNG001 flags unseeded randomness where it is *written*; DET001 walks
    the call graph so a clean-looking public solver cannot *reach* a
    helper that consults the global PRNG, an unseeded generator or the
    wall clock three modules away.  Sources inside the configured exempt
    prefixes (telemetry timestamps in ``repro.obs``) do not count, and
    sources in the entry point's own body are RNG001's, not ours.
    """

    id = "DET001"
    name = "determinism-reachability"
    description = ("public solver/fuzz entry points must not reach "
                   "unseeded RNG or wall-clock reads")
    severity = Severity.ERROR

    def analyze(self, index, config: LintConfig) -> Iterator[Finding]:
        sources: Dict[str, List] = {}
        for summary in index.locks.values():
            if _module_matches(summary.module, config.det_exempt_prefixes):
                continue
            for src in summary.nondet:
                sources.setdefault(src.func, []).append(src)
        if not sources:
            return
        for info in index.functions():
            if not info.is_public:
                continue
            if not _module_matches(info.module, config.det_entry_prefixes):
                continue
            path = index.graph.find_path(info.key, lambda k: k in sources,
                                         skip_start=True)
            if path is None:
                continue
            src = min(sources[path[-1]], key=lambda s: s.lineno)
            src_rel = _relpath_of(index, src.func) or "?"
            yield self.finding(
                info.relpath, info.lineno,
                f"public entry point `{info.name}` reaches {src.reason} "
                f"at {src_rel}:{src.lineno} via {_fmt_path(path)}; thread "
                "a seeded RNG through the call chain",
                _source_line(index, info.relpath, info.lineno))


# --------------------------------------------------------------------------
# EXC001 — instrumentation cleanup on the exception path
# --------------------------------------------------------------------------


#: context-manager factories whose bare call does nothing by itself.
_CM_FACTORIES = frozenset({"span", "timer"})

#: acquire-call name -> matching release-call name.
_PAIRED_CALLS = {
    "start_sampler": "stop_sampler",
    "subscribe": "unsubscribe",
    "enable_tracing": "enable_tracing",
    "enable_ledger": "disable_ledger",
    "enable_events": "disable_events",
    "enable_cache": "disable_cache",
}


def _call_tail(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_disable_call(node: ast.Call) -> bool:
    """``enable_*(False)``-style calls count as the release half."""
    if not node.args:
        return False
    arg = node.args[0]
    return isinstance(arg, ast.Constant) and arg.value is False


@register
class InstrumentationCleanup(Rule):
    """EXC001: instrumentation cleanup must survive exceptions.

    Two shapes are flagged.  A ``span(...)``/``timer(...)`` call whose
    result is discarded does nothing — the context manager must be
    entered via ``with``.  And when one function both acquires and
    releases instrumentation state (``start_sampler``/``stop_sampler``,
    ``subscribe``/``unsubscribe``, ``enable_tracing(True)``/``(False)``,
    ``enable_ledger``/``disable_ledger``), the release must sit in a
    ``finally`` block, or any exception between the pair leaks the
    sampler thread, the subscription or the tracing flag for the rest of
    the process.
    """

    id = "EXC001"
    name = "instrumentation-cleanup"
    description = ("span/timer results must be entered via `with`; "
                   "paired enable/release calls need try/finally")
    severity = Severity.WARNING
    node_types = (ast.Call,)

    def __init__(self) -> None:
        self._calls: List[Tuple[ast.Call, str]] = []

    def start_file(self, ctx: FileContext) -> None:
        self._calls = []

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        tail = _call_tail(node)
        if tail is None:
            return
        if tail in _CM_FACTORIES and isinstance(ctx.parent(node), ast.Expr):
            yield ctx.finding(
                self, node,
                f"`{tail}(...)` creates a context manager and discards "
                "it — nothing is measured; enter it with "
                f"`with {tail}(...):`",
            )
        if tail in _PAIRED_CALLS or tail in _PAIRED_CALLS.values():
            self._calls.append((node, tail))

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        by_func: Dict[Optional[ast.AST], List[Tuple[ast.Call, str]]] = {}
        for node, tail in self._calls:
            by_func.setdefault(ctx.enclosing_function(node), []).append(
                (node, tail))
        for fn, calls in by_func.items():
            if fn is None:
                continue
            yield from self._check_pairs(ctx, calls)

    def _check_pairs(self, ctx: FileContext,
                     calls: List[Tuple[ast.Call, str]]) -> Iterator[Finding]:
        for acquire_name, release_name in _PAIRED_CALLS.items():
            same = acquire_name == release_name
            acquires = [n for n, t in calls if t == acquire_name
                        and not (same and _is_disable_call(n))]
            releases = [n for n, t in calls if t == release_name
                        and (not same or _is_disable_call(n))]
            for release in releases:
                prior = [a for a in acquires if a.lineno < release.lineno]
                if not prior:
                    continue
                if self._in_finally_or_exit(ctx, release):
                    continue
                yield ctx.finding(
                    self, release,
                    f"`{release_name}(...)` pairs with "
                    f"`{acquire_name}(...)` on line {prior[0].lineno} but "
                    "is not in a `finally` block; an exception in between "
                    "leaks the instrumentation state",
                )

    @staticmethod
    def _in_finally_or_exit(ctx: FileContext, node: ast.AST) -> bool:
        cur: Optional[ast.AST] = node
        while cur is not None:
            parent = ctx.parent(cur)
            if isinstance(parent, ast.Try) and cur in parent.finalbody:
                return True
            cur = parent
        return False


# --------------------------------------------------------------------------
# SCH001 — schema-version drift
# --------------------------------------------------------------------------


@register
class SchemaVersionDrift(SemanticRule):
    """SCH001: every file agrees on the current schema version.

    The canonical version of a ``repro.obs/<family>/v<N>`` schema is the
    highest version any scanned file mentions in full form.  Every file
    (code *and* the configured docs) that talks about the family must
    mention that canonical version at least once — a reader, checker or
    document still only naming ``v1`` after the writer moved to ``v2``
    is exactly the drift that silently breaks replay tooling.  Older
    versions may appear alongside the canonical one (migration readers).
    """

    id = "SCH001"
    name = "schema-version-drift"
    description = ("schema-version literals must agree across writers, "
                   "readers, tools and docs")
    severity = Severity.ERROR

    def analyze(self, index, config: LintConfig) -> Iterator[Finding]:
        # file relpath -> mentions
        per_file: Dict[str, List] = {}
        for summary in index.locks.values():
            if summary.schemas:
                per_file[summary.relpath] = list(summary.schemas)
        for doc in self._doc_files(config):
            try:
                rel = doc.resolve().relative_to(config.root).as_posix()
            except ValueError:
                rel = doc.as_posix()
            mentions = scan_schema_mentions(
                doc.read_text(encoding="utf-8"))
            if mentions:
                per_file[rel] = mentions

        canonical: Dict[str, int] = {}
        for mentions in per_file.values():
            for m in mentions:
                if m.full:
                    canonical[m.family] = max(
                        canonical.get(m.family, 0), m.version)

        for rel in sorted(per_file):
            by_family: Dict[str, List] = {}
            for m in per_file[rel]:
                if m.family in canonical:
                    by_family.setdefault(m.family, []).append(m)
            for family in sorted(by_family):
                mentions = by_family[family]
                top = max(mentions, key=lambda m: m.version)
                want = canonical[family]
                if top.version >= want:
                    continue
                yield self.finding(
                    rel, top.lineno,
                    f"schema `{family}` referenced as v{top.version} but "
                    f"the canonical version is v{want} "
                    f"(`repro.obs/{family}/v{want}`); update this "
                    "reference or keep the canonical id alongside the "
                    "legacy one",
                )

    @staticmethod
    def _doc_files(config: LintConfig) -> List[Path]:
        files: List[Path] = []
        for entry in config.schema_docs:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.glob("*.md")))
            elif entry.is_file():
                files.append(entry)
        return files
