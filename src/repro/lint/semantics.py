"""Phase-1 semantic summaries: locks, guarded state, determinism, schemas.

For every module this computes a :class:`ModuleLockSummary` holding the
raw material the semantic rules (LCK001/LCK002/DET001/SCH001) judge in
phase 2:

* **locks** — ``threading.Lock``/``RLock`` objects assigned at module
  level or as instance attributes in ``__init__``;
* **guarded-variable candidates** — module-global mutable containers and
  state-object attributes that look like shared state;
* **accesses** — every read/write of a candidate, annotated with the
  locks lexically held at that point;
* **acquire sites** — every ``with <lock>:`` entry, with the locks
  already held when it runs (LCK002's raw material);
* **nondeterminism sources** — calls into global-PRNG, unseeded-RNG or
  wall-clock APIs (DET001's raw material);
* **schema mentions** — ``repro.obs/<family>/v<N>`` version literals
  (SCH001's raw material).

Lock and variable identity is the tuple ``(module, owner, name)``:
``owner`` is empty for module globals, a module-level instance name when
the class has exactly one such instance (``_STATE``), or ``<ClassName>``
otherwise.  The unification with a unique instance is what lets ``with
_STATE.lock:`` at module scope and ``with self.lock:`` inside the class
agree on one identity.

Association between a variable and its guarding lock comes from an
explicit ``# repro: lock(<name>)`` comment on the variable's assignment
(which always wins) or is inferred when the clear majority of the
variable's access sites already hold one particular lock.  Unassociated
candidates produce no findings — discovery is deliberately greedy
because association is conservative.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.callgraph import (
    _FUNC_NODES,
    MUTABLE_CTORS,
    SYNC_CTORS,
    ModuleSymbols,
    _dotted_name,
)

__all__ = [
    "LockId",
    "LockInfo",
    "GuardedVar",
    "Access",
    "AcquireSite",
    "NondetSource",
    "SchemaMention",
    "ModuleLockSummary",
    "summarize_module",
]

#: ``(module, owner, name)`` — identity of a lock or a guarded variable.
LockId = Tuple[str, str, str]

_LOCK_ANNOT_RE = re.compile(r"#\s*repro:\s*lock\((?P<ref>[^)]*)\)")

#: Enclosing-function names whose accesses are construction-time and
#: exempt from guarding (an object under construction is not yet shared).
_EXEMPT_FUNCS = frozenset({"__init__", "__new__", "__post_init__"})

#: ``random.<fn>`` names that touch the module-global PRNG (shared with
#: RNG001; DET001 adds wall-clock sources on top).
from repro.lint.rules import _GLOBAL_RANDOM_FNS, _NUMPY_SAFE, _SEEDABLE_CLASSES

#: Dotted call targets that read the wall clock (nondeterministic output).
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
    "uuid.uuid1", "uuid.uuid4",
    "os.urandom",
})

#: Mutable *literal* nodes (``{}``, ``[]``, comprehensions...).
_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set,
                     ast.DictComp, ast.ListComp, ast.SetComp)

_SCHEMA_FULL_RE = re.compile(
    r"repro\.obs/(?P<family>[A-Za-z][\w-]*)/v(?P<ver>\d+)")
_SCHEMA_BARE_RE = re.compile(
    r"(?<![\w/.])(?P<family>[A-Za-z][\w-]*)/v(?P<ver>\d+)\b")


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock object."""

    lock: LockId
    kind: str  #: ``"lock"`` or ``"rlock"``
    lineno: int

    @property
    def reentrant(self) -> bool:
        return self.kind == "rlock"

    @property
    def display(self) -> str:
        return _display(self.lock)


@dataclass
class GuardedVar:
    """A shared-state candidate, possibly associated with a lock."""

    var: LockId
    lineno: int
    annotation: Optional[str] = None  #: raw reference from a lock comment
    lock: Optional[LockId] = None  #: resolved guarding lock (after finish)
    inferred: bool = False  #: association came from usage, not annotation

    @property
    def display(self) -> str:
        return _display(self.var)


@dataclass
class Access:
    """One read or write of a guarded-variable candidate."""

    var: LockId
    lineno: int
    col: int
    is_write: bool
    held: FrozenSet[LockId]  #: locks lexically held at the access
    func: Optional[str]  #: enclosing function key, None at module level
    exempt: bool  #: construction-time (module level / ``__init__``)
    #: ``held`` plus the enclosing function's must-hold set (after finish)
    held_effective: FrozenSet[LockId] = frozenset()


@dataclass(frozen=True)
class AcquireSite:
    """One ``with <lock>:`` entry."""

    lock: LockId
    lineno: int
    func: str  #: function key, or ``module:<module>`` at top level
    held_before: FrozenSet[LockId]


@dataclass(frozen=True)
class NondetSource:
    """One call that makes output depend on hidden global state."""

    func: str  #: function key, or ``module:<module>`` at top level
    lineno: int
    reason: str


@dataclass(frozen=True)
class SchemaMention:
    """One ``<family>/v<N>`` schema-version literal in the source."""

    family: str
    version: int
    lineno: int
    full: bool  #: carried the ``repro.obs/`` prefix


def _display(ident: LockId) -> str:
    _, owner, name = ident
    if not owner:
        return name
    if owner.startswith("<"):
        return f"{owner.strip('<>')}.{name}"
    return f"{owner}.{name}"


@dataclass
class ModuleLockSummary:
    """Everything the semantic rules know about one module's shared state."""

    module: str
    relpath: str
    locks: Dict[LockId, LockInfo] = field(default_factory=dict)
    variables: Dict[LockId, GuardedVar] = field(default_factory=dict)
    accesses: List[Access] = field(default_factory=list)
    acquires: List[AcquireSite] = field(default_factory=list)
    nondet: List[NondetSource] = field(default_factory=list)
    schemas: List[SchemaMention] = field(default_factory=list)
    #: (lineno, message) — e.g. an annotation naming an unknown lock
    problems: List[Tuple[int, str]] = field(default_factory=list)
    #: class name -> canonical owner id component
    owner_of_class: Dict[str, str] = field(default_factory=dict)

    # -- queries used by callgraph + rules --------------------------------

    def lock_of_expr(self, expr: ast.AST,
                     enclosing_class: Optional[str]) -> Optional[LockId]:
        """The lock id a ``with``-item expression acquires, if known."""
        if isinstance(expr, ast.Name):
            lid = (self.module, "", expr.id)
            return lid if lid in self.locks else None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = expr.value.id
            if owner == "self" and enclosing_class:
                owner = self.owner_of_class.get(enclosing_class,
                                                f"<{enclosing_class}>")
            lid = (self.module, owner, expr.attr)
            return lid if lid in self.locks else None
        return None

    def guarded_vars(self) -> Iterator[GuardedVar]:
        """Candidates that resolved to a guarding lock."""
        for var in self.variables.values():
            if var.lock is not None:
                yield var

    def finish(self, index) -> None:
        """Resolve lock associations once the project index exists.

        Runs after must-hold propagation: each access's effective held
        set is its lexical locks plus whatever its enclosing function
        provably inherits from every call site.
        """
        must_hold = index.must_hold
        for acc in self.accesses:
            inherited = must_hold.get(acc.func, frozenset()) if acc.func \
                else frozenset()
            acc.held_effective = acc.held | inherited

        by_var: Dict[LockId, List[Access]] = {}
        for acc in self.accesses:
            by_var.setdefault(acc.var, []).append(acc)

        for var in self.variables.values():
            if var.annotation is not None:
                resolved = self._resolve_lock_ref(var.annotation, var.var[1])
                if resolved is None:
                    self.problems.append((
                        var.lineno,
                        f"`# repro: lock({var.annotation})` on "
                        f"`{var.display}` names no known lock in this module",
                    ))
                else:
                    var.lock = resolved
                continue
            # Inference: associate when a clear majority of live (non-
            # construction) access sites already hold one particular lock.
            live = [a for a in by_var.get(var.var, ()) if not a.exempt]
            if len(live) < 2:
                continue
            counts: Dict[LockId, int] = {}
            for acc in live:
                for lock in acc.held_effective:
                    counts[lock] = counts.get(lock, 0) + 1
            if not counts:
                continue
            best = max(sorted(counts), key=lambda lock: counts[lock])
            guarded = counts[best]
            if guarded >= 2 and guarded * 2 > len(live):
                var.lock = best
                var.inferred = True

    def _resolve_lock_ref(self, ref: str, owner: str) -> Optional[LockId]:
        ref = ref.strip()
        if "." in ref:
            ref_owner, _, attr = ref.partition(".")
            lid = (self.module, ref_owner.strip(), attr.strip())
            return lid if lid in self.locks else None
        if owner:
            lid = (self.module, owner, ref)
            if lid in self.locks:
                return lid
        lid = (self.module, "", ref)
        if lid in self.locks:
            return lid
        matches = [l for l in self.locks if l[2] == ref]
        if len(matches) == 1:
            return matches[0]
        return None


# --------------------------------------------------------------------------
# discovery
# --------------------------------------------------------------------------


def _annotation_map(source: str, lines: List[str]) -> Dict[int, str]:
    """lineno -> ``# repro: lock(...)`` reference, from the token stream."""
    table: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(t.start[0], t.string) for t in tokens
                    if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, StopIteration):
        comments = [(i + 1, line) for i, line in enumerate(lines)
                    if "#" in line]
    for lineno, text in comments:
        m = _LOCK_ANNOT_RE.search(text)
        if m:
            table[lineno] = m.group("ref")
    return table


def _ctor_name(value: ast.AST) -> Optional[str]:
    """Last segment of the constructor a ``Call`` value invokes."""
    if isinstance(value, ast.Call):
        dotted = _dotted_name(value.func)
        if dotted:
            return dotted.rsplit(".", 1)[-1]
    return None


def _is_mutable_value(value: ast.AST) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    return _ctor_name(value) in MUTABLE_CTORS


def _lock_kind(value: ast.AST) -> Optional[str]:
    ctor = _ctor_name(value)
    if ctor == "Lock":
        return "lock"
    if ctor == "RLock":
        return "rlock"
    return None


def _owner_map(symbols: ModuleSymbols) -> Dict[str, str]:
    """class name -> owner id component (unique instance name or ``<C>``)."""
    owners: Dict[str, str] = {}
    for cls in symbols.classes:
        instances = [name for name, ctor in symbols.instances.items()
                     if ctor == cls or ctor.endswith(f".{cls}")]
        owners[cls] = instances[0] if len(instances) == 1 else f"<{cls}>"
    return owners


def _annot_for(stmt: ast.stmt, annots: Dict[int, str]) -> Optional[str]:
    end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
    for lineno in range(stmt.lineno, end + 1):
        if lineno in annots:
            return annots[lineno]
    return None


def _assign_targets(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target]
    return []


class _Discovery:
    """Phase A: find locks, candidates and their annotations."""

    def __init__(self, summary: ModuleLockSummary, symbols: ModuleSymbols,
                 tree: ast.Module, annots: Dict[int, str]) -> None:
        self.summary = summary
        self.symbols = symbols
        self.tree = tree
        self.annots = annots

    def run(self) -> None:
        self._module_level()
        for cls in self.symbols.classes:
            self._class_level(cls)
        self._global_rebinds()

    def _add_lock(self, lid: LockId, kind: str, lineno: int) -> None:
        self.summary.locks.setdefault(lid, LockInfo(lid, kind, lineno))

    def _add_var(self, vid: LockId, lineno: int,
                 annotation: Optional[str]) -> None:
        existing = self.summary.variables.get(vid)
        if existing is not None:
            if annotation is not None and existing.annotation is None:
                existing.annotation = annotation
            return
        self.summary.variables[vid] = GuardedVar(vid, lineno,
                                                 annotation=annotation)

    def _module_level(self) -> None:
        module = self.summary.module
        for stmt in self.tree.body:
            targets = _assign_targets(stmt)
            value = getattr(stmt, "value", None)
            if not targets or value is None:
                continue
            annot = _annot_for(stmt, self.annots)
            kind = _lock_kind(value)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__"):
                    continue
                if kind is not None:
                    self._add_lock((module, "", name), kind, stmt.lineno)
                elif _ctor_name(value) in SYNC_CTORS:
                    continue
                elif name in self.symbols.instances:
                    # A state *object*: its attributes are the candidates.
                    continue
                elif _is_mutable_value(value) or annot is not None:
                    self._add_var((module, "", name), stmt.lineno, annot)

    def _class_level(self, cls: str) -> None:
        module = self.summary.module
        owner = self.summary.owner_of_class[cls]
        class_node = self._class_node(cls)
        if class_node is None:
            return
        # Attributes rebound outside __init__ (scalars count as shared
        # state only when some method actually flips them later).
        rebound = self._rebound_attrs(cls)
        for stmt in class_node.body:
            for target in _assign_targets(stmt):
                if isinstance(target, ast.Name):
                    self._attr_stmt(stmt, owner, target.id,
                                    rebound, in_init=False)
        init = self.symbols.functions.get(f"{cls}.__init__")
        if init is None:
            return
        for stmt in ast.walk(init.node):
            for target in _assign_targets(stmt):
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    self._attr_stmt(stmt, owner, target.attr,
                                    rebound, in_init=True)

    def _attr_stmt(self, stmt: ast.stmt, owner: str, attr: str,
                   rebound: Set[str], in_init: bool) -> None:
        if attr.startswith("__"):
            return
        module = self.summary.module
        value = getattr(stmt, "value", None)
        if value is None:
            return
        annot = _annot_for(stmt, self.annots)
        kind = _lock_kind(value)
        if kind is not None:
            self._add_lock((module, owner, attr), kind, stmt.lineno)
        elif _ctor_name(value) in SYNC_CTORS:
            return
        elif _is_mutable_value(value) or annot is not None \
                or (in_init and attr in rebound):
            self._add_var((module, owner, attr), stmt.lineno, annot)

    def _class_node(self, cls: str) -> Optional[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef) and node.name == cls:
                return node
        return None

    def _rebound_attrs(self, cls: str) -> Set[str]:
        """Attrs of ``cls`` stored outside ``__init__``.

        Covers both ``self.X = ...`` in other methods and
        ``_STATE.X = ...`` through a module-level instance anywhere in
        the module — the usual shape for enable/disable scalar flags.
        """
        rebound: Set[str] = set()
        for qualname, info in self.symbols.functions.items():
            if info.cls != cls or info.name == "__init__":
                continue
            for node in ast.walk(info.node):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, (ast.Store, ast.Del))
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"):
                    rebound.add(node.attr)
        instances = {name for name, ctor in self.symbols.instances.items()
                     if ctor == cls or ctor.endswith(f".{cls}")}
        if instances:
            for node in ast.walk(self.tree):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, (ast.Store, ast.Del))
                        and isinstance(node.value, ast.Name)
                        and node.value.id in instances):
                    rebound.add(node.attr)
        return rebound

    def _global_rebinds(self) -> None:
        """Module globals functions rebind via ``global NAME``.

        Scalar flags (``_enabled = False`` toggled by an ``enable()``
        function) are shared state even though their initial value is
        immutable.  Instances are excluded — the state *object* is the
        owner of candidates, not a candidate itself.
        """
        module = self.summary.module
        module_names = {
            t.id for stmt in self.tree.body for t in _assign_targets(stmt)
            if isinstance(t, ast.Name)
        }
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Global):
                continue
            for name in node.names:
                if name in module_names \
                        and name not in self.symbols.instances \
                        and (module, "", name) not in self.summary.locks \
                        and not name.startswith("__"):
                    self._add_var((module, "", name), node.lineno, None)


# --------------------------------------------------------------------------
# access / acquire / nondeterminism walk
# --------------------------------------------------------------------------


def _scope_names(node: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(locally bound names, ``global``-declared names) for one function.

    Does not descend into nested functions/classes/lambdas — those are
    separate scopes.  Over-approximating locals only *hides* accesses
    (the right failure mode: miss, never hallucinate).
    """
    args = node.args
    bound = {a.arg for a in (list(args.posonlyargs) + list(args.args)
                             + list(args.kwonlyargs))}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared: Set[str] = set()

    def walk(children: Iterator[ast.AST]) -> None:
        for child in children:
            if isinstance(child, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Global):
                declared.update(child.names)
            elif isinstance(child, ast.Name) \
                    and isinstance(child.ctx, (ast.Store, ast.Del)):
                bound.add(child.id)
            walk(ast.iter_child_nodes(child))

    walk(iter(node.body))
    return bound - declared, declared


class _SemanticsVisitor(ast.NodeVisitor):
    """Phase B: record accesses, acquire sites and nondet sources."""

    def __init__(self, summary: ModuleLockSummary, symbols: ModuleSymbols,
                 sanctioned_seed_module: bool) -> None:
        self.summary = summary
        self.symbols = symbols
        self.sanctioned = sanctioned_seed_module
        self._stack: List[str] = []
        self._class_stack: List[str] = []
        self._held: List[LockId] = []
        self._scopes: List[Tuple[Set[str], Set[str]]] = []
        self._seed_param_stack: List[bool] = []

    # -- context helpers --------------------------------------------------

    @property
    def _func_key(self) -> Optional[str]:
        if self._stack:
            return f"{self.summary.module}:{'.'.join(self._stack)}"
        return None

    @property
    def _site_key(self) -> str:
        return self._func_key or f"{self.summary.module}:<module>"

    @property
    def _cls(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    @property
    def _exempt(self) -> bool:
        return not self._stack or self._stack[-1] in _EXEMPT_FUNCS

    def _is_module_name(self, name: str) -> bool:
        """True when a bare ``name`` resolves to the module global."""
        for bound, declared in reversed(self._scopes):
            if name in declared:
                return True
            if name in bound:
                return False
        return True

    # -- structure --------------------------------------------------------

    def _visit_func(self, node) -> None:
        self._stack.append(node.name)
        self._scopes.append(_scope_names(node))
        params = {a.arg for a in node.args.args + node.args.kwonlyargs}
        self._seed_param_stack.append("seed" in params)
        held, self._held = self._held, []
        self.generic_visit(node)
        self._held = held
        self._seed_param_stack.pop()
        self._scopes.pop()
        self._stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._stack.pop()

    def visit_With(self, node) -> None:
        acquired: List[LockId] = []
        for item in node.items:
            lock = self.summary.lock_of_expr(item.context_expr, self._cls)
            if lock is not None:
                self.summary.acquires.append(AcquireSite(
                    lock, item.context_expr.lineno, self._site_key,
                    frozenset(self._held)))
                acquired.append(lock)
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self._held[len(self._held) - len(acquired):]

    visit_AsyncWith = visit_With

    # -- accesses ---------------------------------------------------------

    def _record(self, var: LockId, node: ast.AST, is_write: bool) -> None:
        self.summary.accesses.append(Access(
            var=var, lineno=node.lineno, col=node.col_offset,
            is_write=is_write, held=frozenset(self._held),
            func=self._func_key, exempt=self._exempt))

    def visit_Name(self, node: ast.Name) -> None:
        var = (self.summary.module, "", node.id)
        if var in self.summary.variables and self._is_module_name(node.id):
            self._record(var, node,
                         isinstance(node.ctx, (ast.Store, ast.Del)))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            owner = node.value.id
            if owner == "self" and self._cls:
                owner = self.summary.owner_of_class.get(self._cls,
                                                        f"<{self._cls}>")
            var = (self.summary.module, owner, node.attr)
            if var in self.summary.variables:
                self._record(var, node,
                             isinstance(node.ctx, (ast.Store, ast.Del)))
        self.generic_visit(node)

    # -- nondeterminism ---------------------------------------------------

    def _seed_sanctioned(self) -> bool:
        return self.sanctioned and bool(self._seed_param_stack) \
            and self._seed_param_stack[-1]

    def _nondet(self, node: ast.AST, reason: str) -> None:
        self.summary.nondet.append(
            NondetSource(self._site_key, node.lineno, reason))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            resolved = self.symbols.imports.get(head)
            if resolved and resolved != head:
                dotted = resolved + (f".{rest}" if rest else "")
            self._classify_call(node, dotted)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        tail = parts[-1]
        if dotted in _WALLCLOCK_CALLS:
            self._nondet(node, f"`{dotted}()` reads the wall clock / "
                               "OS entropy")
            return
        if parts[0] in ("np", "numpy") and len(parts) >= 3 \
                and parts[1] == "random":
            if tail in _NUMPY_SAFE:
                if tail == "default_rng" and not node.args \
                        and not self._seed_sanctioned():
                    self._nondet(node, "`default_rng()` without a seed")
            elif tail in _SEEDABLE_CLASSES:
                if not node.args and not self._seed_sanctioned():
                    self._nondet(node, f"`numpy.random.{tail}()` without "
                                       "a seed")
            else:
                self._nondet(node, f"numpy global-state "
                                   f"`numpy.random.{tail}()`")
            return
        if parts[0] == "random" and len(parts) == 2:
            if tail in _GLOBAL_RANDOM_FNS:
                self._nondet(node, f"global-state `random.{tail}()`")
            elif tail in _SEEDABLE_CLASSES and not node.args \
                    and not self._seed_sanctioned():
                self._nondet(node, f"`random.{tail}()` without a seed")
            return
        if len(parts) == 1 and tail in _SEEDABLE_CLASSES and not node.args \
                and self.symbols.imports.get(tail, "").startswith("random.") \
                and not self._seed_sanctioned():
            self._nondet(node, f"`{tail}()` without a seed")


# --------------------------------------------------------------------------
# schema literals
# --------------------------------------------------------------------------


def scan_schema_mentions(source: str) -> List[SchemaMention]:
    """Every ``<family>/v<N>`` literal in ``source`` with its line."""
    mentions: List[SchemaMention] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        spans: List[Tuple[int, int]] = []
        for m in _SCHEMA_FULL_RE.finditer(line):
            mentions.append(SchemaMention(
                m.group("family"), int(m.group("ver")), lineno, full=True))
            spans.append(m.span())
        for m in _SCHEMA_BARE_RE.finditer(line):
            if any(s <= m.start("family") < e for s, e in spans):
                continue
            mentions.append(SchemaMention(
                m.group("family"), int(m.group("ver")), lineno, full=False))
    return mentions


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------


def summarize_module(symbols: ModuleSymbols, ctx) -> ModuleLockSummary:
    """Build the lock/determinism/schema summary for one parsed module.

    ``ctx`` is the engine's :class:`repro.lint.engine.FileContext` — only
    ``source``, ``lines``, ``module`` and ``lint_config`` are used, so
    tests may pass any duck-typed stand-in.
    """
    summary = ModuleLockSummary(module=symbols.module,
                                relpath=symbols.relpath)
    summary.owner_of_class = _owner_map(symbols)

    annots = _annotation_map(ctx.source, ctx.lines)
    _Discovery(summary, symbols, ctx.tree, annots).run()

    config = getattr(ctx, "lint_config", None)
    prefixes = getattr(config, "rng_seeded_entry_prefixes", ()) if config \
        else ()
    sanctioned = any(
        symbols.module.startswith(p) or symbols.module == p.rstrip(".")
        for p in prefixes
    )
    _SemanticsVisitor(summary, symbols, sanctioned).visit(ctx.tree)

    summary.schemas = scan_schema_mentions(ctx.source)
    return summary
