"""repro.lint — two-phase, whole-project static analysis.

A zero-dependency analyzer enforcing the invariants the type system
cannot see (see ``docs/static_analysis.md``).  Phase 1 builds a project
index — symbol tables, the import-resolved call graph, lock-context
summaries (:mod:`repro.lint.callgraph`, :mod:`repro.lint.semantics`);
phase 2 runs the syntactic rules

* **RNG001** — no unseeded or global-state randomness;
* **FLT001** — no bare float ``==``/``!=`` (probabilities, payoffs);
* **THM001** — docstring theorem tags resolve against ``docs/theory.md``;
* **LAY001** — imports follow the package layering DAG, no cycles;
* **OBS001** — public solver/engine entry points carry a span/timer;
* **API001** — every ``__all__`` export appears in ``docs/api.md``;

and the semantic rules against the index

* **LCK001** — lock-associated shared state accessed without its lock;
* **LCK002** — self-deadlock: a held non-reentrant lock re-acquired;
* **DET001** — entry points reaching unseeded RNG / wall-clock reads;
* **EXC001** — instrumentation cleanup an exception can skip;
* **SCH001** — schema-version literals drifting between files and docs.

Suppress a finding with ``# repro: noqa[RULE]`` on the flagged
statement; associate state with its guard via ``# repro: lock(<name>)``;
accept existing debt via the committed ``lint_baseline.json``.  Exposed
as ``repro-defender lint``, ``tools/analyze.py`` and ``make lint``
(``--changed[=REF]`` limits the *reported* files to the git diff while
still indexing the whole project); the run also feeds ``lint.*``
counters into :mod:`repro.obs.metrics` so lint health shows up alongside
solver telemetry.
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path
from typing import Optional, Sequence, Set

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.engine import (
    DEFAULT_LAYERS,
    FileContext,
    LintConfig,
    LintEngine,
    LintReport,
    ProjectRule,
    Rule,
    SemanticRule,
    register,
    registered_rules,
)
from repro.lint.findings import Finding, Severity
from repro.lint.output import render_json, render_sarif, render_text

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "ProjectRule",
    "SemanticRule",
    "register",
    "registered_rules",
    "FileContext",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "DEFAULT_LAYERS",
    "DEFAULT_BASELINE_NAME",
    "run_lint",
    "render_text",
    "render_json",
    "render_sarif",
    "render_baseline",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "changed_files",
    "add_lint_arguments",
    "run_from_args",
]


def run_lint(config: LintConfig,
             baseline: Optional[Path] = None) -> LintReport:
    """Run the analyzer and feed the result into the metrics registry."""
    from repro.obs import metrics

    engine = LintEngine(config)
    with metrics.timer("lint.run.seconds"):
        report = engine.run()
    if baseline is not None:
        report = apply_baseline(report, baseline)
    metrics.counter("lint.runs.count").inc()
    metrics.counter("lint.files.count").inc(report.files_scanned)
    metrics.counter("lint.findings.count").inc(len(report.findings))
    for finding in report.findings:
        metrics.counter(f"lint.findings.{finding.rule}.count").inc()
    metrics.gauge("lint.findings.open").set(len(report.findings))
    metrics.gauge("lint.baseline.suppressed").set(report.baseline_applied)
    return report


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` options (CLI subcommand + analyze.py)."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: src/repro and tools)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="fmt", help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help=f"subtract the committed {DEFAULT_BASELINE_NAME}",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="re-snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any finding (default: errors only)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the rendered report to FILE instead of stdout",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="only report findings in files changed vs the given git ref "
             "(default HEAD); the project index still covers everything",
    )
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: auto-detected from this package)",
    )


def changed_files(root: Path, ref: str = "HEAD") -> Set[str]:
    """Posix-relative paths changed vs ``ref`` (``git diff --name-only``).

    Untracked files are included so a brand-new module still gets linted
    under ``--changed``.  Raises ``RuntimeError`` when git is unusable
    (not a repository, unknown ref) so the caller can fail loudly rather
    than silently lint nothing.
    """
    paths: Set[str] = set()
    for extra in ([], ["--cached"]):
        proc = subprocess.run(
            ["git", "diff", "--name-only", *extra, ref, "--"],
            cwd=root, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"git diff --name-only {ref} failed: "
                f"{proc.stderr.strip() or 'unknown error'}"
            )
        paths.update(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        cwd=root, capture_output=True, text=True,
    )
    if untracked.returncode == 0:
        paths.update(line.strip() for line in untracked.stdout.splitlines()
                     if line.strip())
    return paths


def _detect_root(explicit: Optional[str]) -> Path:
    if explicit:
        return Path(explicit).resolve()
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


def run_from_args(args: argparse.Namespace,
                  emit=print) -> int:
    """Drive a lint run from parsed arguments; returns an exit code."""
    root = _detect_root(getattr(args, "root", None))
    select = None
    if getattr(args, "select", None):
        select = {r.strip().upper() for r in args.select.split(",") if r.strip()}
    config = LintConfig.for_repo(root, [Path(p) for p in args.paths])
    config.select = select
    ref = getattr(args, "changed", None)
    if ref:
        try:
            config.changed_only = changed_files(root, ref)
        except RuntimeError as exc:
            emit(f"error: {exc}")
            return 2
    baseline_path = root / DEFAULT_BASELINE_NAME
    if getattr(args, "write_baseline", False):
        report = run_lint(config)
        n = write_baseline(baseline_path, report.findings)
        emit(f"wrote {baseline_path.name} with {n} entr(y/ies)")
        return 0
    report = run_lint(config, baseline_path if args.baseline else None)
    if args.fmt == "json":
        rendered = render_json(report)
    elif args.fmt == "sarif":
        engine = LintEngine(config)
        rendered = render_sarif(report, engine.rules)
    else:
        rendered = render_text(report)
    output = getattr(args, "output", None)
    if output:
        Path(output).write_text(rendered + "\n", encoding="utf-8")
        emit(f"wrote {output} ({len(report.findings)} finding(s))")
    else:
        emit(rendered)
    if report.parse_errors:
        return 2
    return report.exit_code(strict=getattr(args, "strict", False))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based domain-invariant analyzer for this repository.",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
