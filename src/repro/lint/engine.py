"""Two-phase analysis engine for the :mod:`repro.lint` analyzer.

**Phase 1** parses every file once and builds the project index — symbol
tables, the import-resolved call graph and per-module lock summaries
(:mod:`repro.lint.callgraph` / :mod:`repro.lint.semantics`).  **Phase 2**
walks each file's AST exactly once, dispatching every node to the rules
that registered interest in its type, then runs the cross-file rules
against the collected facts and the index.  Three rule kinds exist:

* :class:`Rule` — per-node visitors (``node_types`` + ``visit``);
* :class:`ProjectRule` — collect per-file facts during the walk
  (``collect``) and emit findings once the whole tree has been seen
  (``finalize``) — this is how import layering or documentation
  cross-checks see the entire project;
* :class:`SemanticRule` — judge the phase-1 :class:`ProjectIndex`
  directly (``analyze``) — lock discipline, determinism reachability,
  schema consistency.

Suppression: append ``# repro: noqa[RULE1,RULE2]`` (or a bare
``# repro: noqa``) to the flagged statement.  A suppression anywhere on
a multi-line statement covers the whole logical line; suppressions are
per-rule, and unknown rule names in a suppression are ignored.
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Type

from repro.lint.findings import Finding, Severity, assign_occurrences

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")


# --------------------------------------------------------------------------
# configuration


@dataclass
class LintConfig:
    """Everything the engine and the rules need to know about the project.

    The defaults describe this repository; tests override individual
    fields to point the project rules at fixture documents.
    """

    root: Path
    paths: Tuple[Path, ...] = ()
    theory_doc: Optional[Path] = None
    api_doc: Optional[Path] = None
    #: package (or dotted-module prefix) -> layer number; imports may only
    #: point at the same or a *lower* layer (see LAY001).
    layers: Mapping[str, int] = field(default_factory=dict)
    #: dotted-module prefixes whose public functions must be instrumented
    #: with a span/timer from repro.obs (see OBS001).
    obs_required: Tuple[str, ...] = ()
    #: dotted-module prefixes where an *unseeded* RNG is tolerated inside
    #: functions that take an explicit ``seed`` parameter (see RNG001).
    rng_seeded_entry_prefixes: Tuple[str, ...] = ()
    #: packages whose module docstrings must cite at least one paper
    #: result (see THM001).
    theory_packages: Tuple[str, ...] = ()
    #: dotted-module prefixes whose ``__all__`` functions are determinism
    #: entry points: no call path may reach unseeded RNG or wall-clock
    #: reads (see DET001).
    det_entry_prefixes: Tuple[str, ...] = ()
    #: dotted-module prefixes whose nondeterminism is sanctioned
    #: (telemetry timestamps are not solver output; see DET001).
    det_exempt_prefixes: Tuple[str, ...] = ()
    #: documents scanned for schema-version literals alongside the code
    #: (files, or directories meaning every ``*.md`` inside; see SCH001).
    schema_docs: Tuple[Path, ...] = ()
    #: report findings only for these relpaths (None = everything); the
    #: index is still built project-wide.  See ``lint --changed``.
    changed_only: Optional[Set[str]] = None
    #: restrict the run to these rule ids (None = all registered rules).
    select: Optional[Set[str]] = None
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    @classmethod
    def for_repo(cls, root: Path, paths: Sequence[Path] = ()) -> "LintConfig":
        """The canonical configuration for this repository."""
        root = Path(root).resolve()
        scan = tuple(Path(p) for p in paths) or (
            root / "src" / "repro",
            root / "tools",
            root / "benchmarks",
        )
        return cls(
            root=root,
            paths=scan,
            theory_doc=root / "docs" / "theory.md",
            api_doc=root / "docs" / "api.md",
            layers=dict(DEFAULT_LAYERS),
            obs_required=(
                "repro.cache.",
                "repro.kernels.",
                "repro.solvers.",
                "repro.simulation.engine",
                "repro.simulation.fast",
                "repro.equilibria.solve",
                "repro.fuzz.runner",
                "repro.serve.",
                "repro.obs.ledger",
                "repro.obs.prof",
                "repro.obs.watchdog",
                "repro.obs.events",
                "repro.obs.resources",
                "repro.obs.report",
                "repro.obs.access",
                "repro.obs.slo",
            ),
            rng_seeded_entry_prefixes=("repro.simulation.", "repro.fuzz."),
            theory_packages=("repro.core", "repro.equilibria"),
            det_entry_prefixes=(
                "repro.solvers.",
                "repro.equilibria.",
                "repro.kernels.",
                "repro.simulation.",
                "repro.fuzz.",
            ),
            # repro.cache: LRU clocks and store timestamps are telemetry,
            # not solver output — replayed payloads are byte-identical.
            det_exempt_prefixes=("repro.obs.", "repro.lint.",
                                 "repro.cache."),
            schema_docs=(root / "docs",),
        )


#: The enforced import-layering DAG, bottom (0) to top.  ``repro.obs`` is
#: layer 0 and therefore importable from everywhere; packages sharing a
#: number form one layer and may import each other.  See
#: ``docs/static_analysis.md`` for the rationale.
DEFAULT_LAYERS: Mapping[str, int] = {
    "repro.obs": 0,
    "repro.graphs": 1,
    "repro.matching": 1,
    "repro.core": 2,
    "repro.cache": 3,
    "repro.kernels": 3,
    "repro.equilibria": 3,
    "repro.solvers": 4,
    "repro.simulation": 5,
    "repro.weighted": 5,
    "repro.models": 5,
    "repro.analysis": 6,
    "repro.lint": 6,
    "repro.fuzz": 6,
    "repro.serve": 7,
    "repro.cli": 7,
    "repro": 8,
}


# --------------------------------------------------------------------------
# per-file context


class FileContext:
    """Everything a rule may want to know about the file being walked."""

    def __init__(self, path: Path, relpath: str, module: str,
                 source: str, tree: ast.Module,
                 lint_config: Optional["LintConfig"] = None) -> None:
        self.lint_config = lint_config
        self.path = path
        self.relpath = relpath
        #: dotted module name (``repro.core.pure``); empty for files that
        #: do not live under a recognised source root.
        self.module = module
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._suppressions: Optional[Dict[int, Optional[Set[str]]]] = None
        self._exports: Optional[Tuple[Tuple[str, ...], int]] = None

    # -- structure helpers ------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (lazy one-time index)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    def enclosing_function(self, node: ast.AST):
        """The nearest enclosing function/async-function def, or None."""
        cur = self.parent(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = self.parent(cur)
        return None

    @property
    def exports(self) -> Tuple[str, ...]:
        """Names in a literal top-level ``__all__`` (empty if absent)."""
        return self._parse_exports()[0]

    @property
    def exports_line(self) -> int:
        """Line of the ``__all__`` assignment (1 if absent)."""
        return self._parse_exports()[1]

    def _parse_exports(self) -> Tuple[Tuple[str, ...], int]:
        if self._exports is None:
            names: Tuple[str, ...] = ()
            line = 1
            for stmt in self.tree.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == "__all__"
                        and isinstance(stmt.value, (ast.List, ast.Tuple))):
                    collected = []
                    for elt in stmt.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            collected.append(elt.value)
                    names, line = tuple(collected), stmt.lineno
            self._exports = (names, line)
        return self._exports

    # -- suppression ------------------------------------------------------

    def _suppression_map(self) -> Dict[int, Optional[Set[str]]]:
        """line -> suppressed rule ids (None = all rules) from comments.

        Built from the token stream so ``#`` characters inside string
        literals never read as comments.  A noqa comment anywhere on a
        multi-line statement covers every physical line of that logical
        line — a finding anchored at the ``with`` keyword three lines
        above the trailing comment is still suppressed.
        """
        if self._suppressions is None:
            self._suppressions = self._build_suppressions()
        return self._suppressions

    def _build_suppressions(self) -> Dict[int, Optional[Set[str]]]:
        # (comment-line, text, line-range-it-covers)
        spans: List[Tuple[str, range]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            logical_start: Optional[int] = None
            pending: List[str] = []
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    if logical_start is None:
                        spans.append((tok.string, range(tok.start[0],
                                                        tok.start[0] + 1)))
                    else:
                        pending.append(tok.string)
                elif tok.type == tokenize.NEWLINE:
                    end = tok.end[0]
                    start = logical_start if logical_start is not None else end
                    for text in pending:
                        spans.append((text, range(start, end + 1)))
                    pending, logical_start = [], None
                elif tok.type in (tokenize.NL, tokenize.INDENT,
                                  tokenize.DEDENT, tokenize.ENDMARKER):
                    continue
                elif logical_start is None:
                    logical_start = tok.start[0]
        except (tokenize.TokenError, IndentationError, StopIteration):
            spans = [(line, range(i + 1, i + 2))
                     for i, line in enumerate(self.lines) if "#" in line]
        table: Dict[int, Optional[Set[str]]] = {}
        for text, lines in spans:
            m = _NOQA_RE.search(text)
            if not m:
                continue
            rules = m.group("rules")
            ids: Optional[Set[str]]
            if rules is None:
                ids = None
            else:
                ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            for lineno in lines:
                prior = table.get(lineno, set())
                if ids is None or prior is None:
                    table[lineno] = None
                else:
                    table[lineno] = prior | ids
        return table

    def suppressed(self, line: int, rule: str) -> bool:
        """True if ``rule`` is noqa'd on ``line``."""
        table = self._suppression_map()
        if line not in table:
            return False
        rules = table[line]
        return rules is None or rule.upper() in rules

    # -- finding construction ---------------------------------------------

    def finding(self, rule: "Rule", node_or_line, message: str,
                col: Optional[int] = None) -> Finding:
        """Build a Finding anchored at an AST node or a 1-based line."""
        if isinstance(node_or_line, int):
            line, column = node_or_line, 0 if col is None else col
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0) if col is None else col
        source = self.lines[line - 1] if 1 <= line <= len(self.lines) else ""
        return Finding(rule.id, rule.severity, self.relpath, line,
                       column, message, source)


# --------------------------------------------------------------------------
# rules


class Rule:
    """Base class: a per-node visitor with an id, severity and docs."""

    id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: AST node classes this rule wants to see (empty for project rules).
    node_types: Tuple[Type[ast.AST], ...] = ()

    def start_file(self, ctx: FileContext) -> None:
        """Hook before the walk of one file (reset per-file state)."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one node."""
        return iter(())

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield file-level findings once the walk is complete."""
        return iter(())


class ProjectRule(Rule):
    """A rule that needs the whole project before it can judge."""

    def collect(self, ctx: FileContext) -> None:
        """Record facts about one file (called after its walk)."""

    def finalize(self, config: LintConfig) -> Iterator[Finding]:
        """Yield findings after every file has been collected."""
        return iter(())


class SemanticRule(Rule):
    """A rule that judges the phase-1 project index directly.

    ``analyze`` receives the :class:`repro.lint.callgraph.ProjectIndex`
    built from every scanned file — symbol tables, call graph, lock
    summaries — and yields findings.  Semantic rules see no per-node
    dispatch; ``node_types`` stays empty.
    """

    #: rules documentation anchor, filled per rule for SARIF ``helpUri``.
    help_anchor: str = ""

    def analyze(self, index, config: LintConfig) -> Iterator[Finding]:
        """Yield findings from the project index."""
        return iter(())

    def finding(self, relpath: str, line: int, message: str,
                source: str = "", col: int = 0) -> Finding:
        """Build a finding without a FileContext (index-derived)."""
        return Finding(self.id, self.severity, relpath, line, col,
                       message, source)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """The registry (id -> rule class), importing the built-in rules."""
    # Imported lazily so `engine` has no import cycle with the rule modules.
    from repro.lint import project, rules, semrules  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


# --------------------------------------------------------------------------
# report + engine


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    findings: List[Finding]
    files_scanned: int
    baseline_applied: int = 0
    baseline_stale: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: wall-clock seconds for the full run (parse + index + rules).
    elapsed_s: float = 0.0

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity >= Severity.ERROR)

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 on errors (or on anything under ``--strict``)."""
        if strict:
            return 1 if self.findings else 0
        return 1 if self.error_count else 0


class LintEngine:
    """Instantiates the rules and runs the single-pass walk."""

    def __init__(self, config: LintConfig,
                 rule_classes: Optional[Iterable[Type[Rule]]] = None) -> None:
        self.config = config
        classes = list(rule_classes) if rule_classes is not None \
            else list(registered_rules().values())
        if config.select is not None:
            wanted = {r.upper() for r in config.select}
            classes = [c for c in classes if c.id in wanted]
        self.rules: List[Rule] = [cls() for cls in classes]
        for rule in self.rules:
            override = config.severity_overrides.get(rule.id)
            if override is not None:
                rule.severity = override
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    # -- discovery --------------------------------------------------------

    def iter_files(self) -> Iterator[Path]:
        for base in self.config.paths:
            base = Path(base)
            if base.is_file() and base.suffix == ".py":
                yield base
            elif base.is_dir():
                yield from sorted(
                    p for p in base.rglob("*.py")
                    if "__pycache__" not in p.parts
                    and not any(part.startswith(".") for part in p.parts)
                )

    def module_name(self, path: Path) -> str:
        """Dotted module name for ``path`` (empty when unrecognised)."""
        try:
            rel = path.resolve().relative_to(self.config.root / "src")
        except ValueError:
            return ""
        parts = list(rel.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts.pop()
        return ".".join(parts)

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.config.root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- phase 1: parse + index -------------------------------------------

    def parse_file(self, path: Path) -> Tuple[Optional[FileContext], Optional[str]]:
        """Parse one file into a context; (None, error) on syntax error."""
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return None, f"{self.relpath(path)}: {exc.msg} (line {exc.lineno})"
        return FileContext(path, self.relpath(path), self.module_name(path),
                           source, tree, self.config), None

    def parse_all(self) -> Tuple[List[FileContext], List[str]]:
        contexts: List[FileContext] = []
        errors: List[str] = []
        for path in self.iter_files():
            ctx, error = self.parse_file(path)
            if ctx is not None:
                contexts.append(ctx)
            if error:
                errors.append(error)
        return contexts, errors

    def build_index(self, contexts: Sequence[FileContext]):
        """The phase-1 :class:`~repro.lint.callgraph.ProjectIndex`."""
        from repro.lint.callgraph import ProjectIndex

        return ProjectIndex.build(contexts)

    # -- phase 2: the rule pass -------------------------------------------

    def lint_file(self, path: Path) -> Tuple[List[Finding], Optional[str]]:
        """Lint one file (per-node rules only; no project index)."""
        ctx, error = self.parse_file(path)
        if ctx is None:
            return [], error
        return self._lint_context(ctx), None

    def _lint_context(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for rule in self.rules:
            rule.start_file(ctx)
        for node in ast.walk(ctx.tree):
            for rule in self._dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
        for rule in self.rules:
            findings.extend(rule.end_file(ctx))
            if isinstance(rule, ProjectRule):
                rule.collect(ctx)
        return [f for f in findings if not ctx.suppressed(f.line, f.rule)]

    def run(self) -> LintReport:
        started = time.perf_counter()
        contexts, errors = self.parse_all()
        semantic = [r for r in self.rules if isinstance(r, SemanticRule)]
        index = self.build_index(contexts) if semantic else None

        findings: List[Finding] = []
        for ctx in contexts:
            findings.extend(self._lint_context(ctx))
        late: List[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                late.extend(rule.finalize(self.config))
        for rule in semantic:
            late.extend(rule.analyze(index, self.config))
        # Project/semantic findings still honour per-line suppressions.
        by_path = {ctx.relpath: ctx for ctx in contexts}
        findings.extend(self._apply_suppressions(late, by_path))
        if self.config.changed_only is not None:
            changed = self.config.changed_only
            findings = [f for f in findings if f.path in changed]
        return LintReport(assign_occurrences(findings), len(contexts),
                          parse_errors=errors,
                          elapsed_s=time.perf_counter() - started)

    def _apply_suppressions(
        self, findings: List[Finding],
        contexts: Optional[Mapping[str, FileContext]] = None,
    ) -> List[Finding]:
        by_path: Dict[str, List[Finding]] = {}
        for f in findings:
            by_path.setdefault(f.path, []).append(f)
        kept: List[Finding] = []
        for rel, group in by_path.items():
            ctx = (contexts or {}).get(rel)
            if ctx is None:
                path = self.config.root / rel
                if not path.is_file() or path.suffix != ".py":
                    kept.extend(group)
                    continue
                source = path.read_text(encoding="utf-8")
                try:
                    tree = ast.parse(source)
                except SyntaxError:
                    kept.extend(group)
                    continue
                ctx = FileContext(path, rel, "", source, tree)
            kept.extend(f for f in group if not ctx.suppressed(f.line, f.rule))
        return kept
