"""Per-node domain rules: RNG001, FLT001, OBS001.

These rules judge one file at a time from its AST; the cross-file rules
(layering, documentation indices) live in :mod:`repro.lint.project`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.engine import FileContext, Rule, register
from repro.lint.findings import Finding, Severity

# --------------------------------------------------------------------------
# RNG001 — no unseeded / global-state randomness


#: `random.<fn>()` calls that mutate or read the module-global PRNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "getrandbits", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "binomialvariate",
})

#: numpy.random attributes that do NOT touch global state when called.
_NUMPY_SAFE = frozenset({"default_rng", "Generator", "SeedSequence",
                         "BitGenerator", "PCG64", "Philox", "MT19937"})

#: Class-like constructors that are fine *when seeded* (given arguments).
_SEEDABLE_CLASSES = frozenset({"Random", "SystemRandom", "RandomState"})


@register
class UnseededRandomness(Rule):
    """RNG001: all randomness must flow through an explicitly seeded RNG.

    Deterministic reproduction is a theorem-level requirement here —
    equilibrium constructions and Monte-Carlo estimates must replay
    bit-identically under an injected seed.  Flags:

    * calls through the ``random`` module's global PRNG
      (``random.random()``, ``random.shuffle()``, bare ``randint`` after
      ``from random import randint``, ...);
    * ``numpy.random.*`` global-state calls (``np.random.rand()``,
      ``np.random.seed()``, ...) — use ``np.random.default_rng(seed)``;
    * unseeded constructors (``random.Random()`` with no arguments),
      unless the enclosing function takes an explicit ``seed`` parameter
      and lives in a sanctioned simulation entry-point module.
    """

    id = "RNG001"
    name = "unseeded-randomness"
    description = ("randomness must come from an explicitly seeded "
                   "random.Random / numpy Generator")
    severity = Severity.ERROR
    node_types = (ast.Call, ast.ImportFrom)

    def __init__(self) -> None:
        self._from_imports: Set[str] = set()

    def start_file(self, ctx: FileContext) -> None:
        self._from_imports = set()

    def _entry_point_exempt(self, node: ast.AST, ctx: FileContext) -> bool:
        """Unseeded RNG tolerated in seed-taking simulation entry points."""
        config = getattr(ctx, "lint_config", None)
        prefixes = getattr(config, "rng_seeded_entry_prefixes",
                           ("repro.simulation.",)) if config else \
            ("repro.simulation.",)
        if not any(ctx.module.startswith(p) or ctx.module == p.rstrip(".")
                   for p in prefixes):
            return False
        fn = ctx.enclosing_function(node)
        if fn is None:
            return False
        names = [a.arg for a in fn.args.args + fn.args.kwonlyargs]
        return "seed" in names

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                for alias in node.names:
                    self._from_imports.add(alias.asname or alias.name)
            return
        assert isinstance(node, ast.Call)
        func = node.func

        # random.<fn>(...) through the module object.
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"):
            if func.attr in _GLOBAL_RANDOM_FNS:
                yield ctx.finding(
                    self, node,
                    f"call to global-state `random.{func.attr}()`; "
                    "construct `random.Random(seed)` and use its methods",
                )
            elif func.attr in _SEEDABLE_CLASSES and not node.args:
                if not self._entry_point_exempt(node, ctx):
                    yield ctx.finding(
                        self, node,
                        f"`random.{func.attr}()` without a seed; pass an "
                        "explicit seed so runs are reproducible",
                    )
            return

        # np.random.<fn>(...) / numpy.random.<fn>(...).
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in ("np", "numpy")):
            if func.attr in _NUMPY_SAFE:
                if func.attr == "default_rng" and not node.args \
                        and not self._entry_point_exempt(node, ctx):
                    yield ctx.finding(
                        self, node,
                        "`default_rng()` without a seed; pass an explicit "
                        "seed so runs are reproducible",
                    )
                return
            if func.attr in _SEEDABLE_CLASSES:
                if not node.args and not self._entry_point_exempt(node, ctx):
                    yield ctx.finding(
                        self, node,
                        f"`numpy.random.{func.attr}()` without a seed",
                    )
                return
            yield ctx.finding(
                self, node,
                f"call to numpy global-state `numpy.random.{func.attr}()`; "
                "use `numpy.random.default_rng(seed)`",
            )
            return

        # Bare names bound by `from random import ...`.
        if isinstance(func, ast.Name) and func.id in self._from_imports:
            if func.id in _GLOBAL_RANDOM_FNS:
                yield ctx.finding(
                    self, node,
                    f"call to global-state `{func.id}()` imported from "
                    "`random`; construct `random.Random(seed)` instead",
                )
            elif func.id in _SEEDABLE_CLASSES and not node.args \
                    and not self._entry_point_exempt(node, ctx):
                yield ctx.finding(
                    self, node, f"`{func.id}()` without a seed",
                )


# --------------------------------------------------------------------------
# FLT001 — no bare float equality


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))):
        return _is_float_literal(node.operand)
    return False


@register
class FloatEquality(Rule):
    """FLT001: probabilities and payoffs never compare with ``==``/``!=``.

    Equilibrium conditions are equalities between floating-point
    quantities (hit probabilities, tuple masses, payoffs); exact
    comparison silently turns rounding noise into wrong verdicts.  Any
    ``==``/``!=`` with a float literal operand is flagged — use
    ``math.isclose``, an absolute tolerance such as
    ``repro.core.PROB_TOL``, or integer arithmetic.
    """

    id = "FLT001"
    name = "float-equality"
    description = "no bare == / != against float literals; use a tolerance"
    severity = Severity.WARNING
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left] + list(node.comparators)
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[i], operands[i + 1]
            if _is_float_literal(left) or _is_float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield ctx.finding(
                    self, node,
                    f"bare float `{symbol}` comparison; use math.isclose "
                    "or an explicit tolerance (e.g. repro.core.PROB_TOL)",
                )


# --------------------------------------------------------------------------
# OBS001 — solver/engine entry points must be instrumented


#: names whose presence (as a bare name or attribute) counts as
#: instrumentation: a tracing span, a metrics timer, or the decorator.
_OBS_MARKERS = frozenset({"span", "timer", "traced"})

#: public functions this small are helpers, not entry points.
_TRIVIAL_BODY_STATEMENTS = 3


@register
class UninstrumentedEntryPoint(Rule):
    """OBS001: public solver/engine entry points carry a span or timer.

    ``repro stats`` and the benchmark telemetry only see what is
    instrumented; a public solver without a span is invisible to the
    perf trajectory.  Within the configured modules, every function
    exported via ``__all__`` (beyond trivial helpers) must reference a
    ``span``/``timer`` from :mod:`repro.obs` or wear ``@traced``.
    """

    id = "OBS001"
    name = "uninstrumented-entry-point"
    description = ("public solver/engine functions must use a repro.obs "
                   "span, timer or @traced")
    severity = Severity.WARNING
    node_types = (ast.FunctionDef,)

    def _applies(self, ctx: FileContext) -> bool:
        config = getattr(ctx, "lint_config", None)
        prefixes = getattr(config, "obs_required", ()) if config else ()
        return any(
            ctx.module.startswith(p) if p.endswith(".") else ctx.module == p
            for p in prefixes
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.FunctionDef)
        if not self._applies(ctx):
            return
        if node.name not in ctx.exports:
            return
        if not isinstance(ctx.parent(node), ast.Module):
            return
        body = node.body
        if body and isinstance(body[0], ast.Expr) \
                and isinstance(body[0].value, ast.Constant) \
                and isinstance(body[0].value.value, str):
            body = body[1:]
        if len(body) < _TRIVIAL_BODY_STATEMENTS:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in _OBS_MARKERS:
                return
            if isinstance(sub, ast.Attribute) and sub.attr in _OBS_MARKERS:
                return
        yield ctx.finding(
            self, node,
            f"public entry point `{node.name}` has no repro.obs "
            "instrumentation; wrap it in tracing.span(...) / "
            "metrics.timer(...) or decorate with @traced",
        )
