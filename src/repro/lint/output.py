"""Report renderers for :mod:`repro.lint`: text, JSON and SARIF 2.1.0.

The SARIF document targets the 2.1.0 schema consumed by GitHub code
scanning: one run, one tool driver carrying the rule metadata, one
result per finding with a physical location and a partial fingerprint.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.lint.engine import LintReport, Rule

TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro"  # placeholder informationUri
#: Per-rule documentation anchors (``docs/static_analysis.md#rng001``).
HELP_URI_BASE = "docs/static_analysis.md"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """Human-readable findings plus a one-line summary."""
    lines: List[str] = [f.render() for f in report.findings]
    for err in report.parse_errors:
        lines.append(f"parse error: {err}")
    counts: Dict[str, int] = {}
    for f in report.findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    elapsed = f" in {report.elapsed_s:.2f}s" if report.elapsed_s else ""
    if report.findings:
        by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files_scanned} "
            f"file(s) [{by_rule}]{elapsed}"
        )
    else:
        lines.append(
            f"clean: 0 findings in {report.files_scanned} file(s){elapsed}")
    if report.baseline_applied:
        lines.append(f"baseline: {report.baseline_applied} finding(s) suppressed")
    if report.baseline_stale:
        lines.append(
            f"baseline: {report.baseline_stale} stale entr(y/ies) — "
            "refresh with --write-baseline"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    doc = {
        "tool": TOOL_NAME,
        "files_scanned": report.files_scanned,
        "baseline_applied": report.baseline_applied,
        "baseline_stale": report.baseline_stale,
        "parse_errors": list(report.parse_errors),
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(doc, indent=2)


def render_sarif(report: LintReport, rules: Iterable[Rule],
                 tool_version: str = "1.0.0") -> str:
    """A valid SARIF 2.1.0 log for GitHub code scanning."""
    rule_list = sorted(rules, key=lambda r: r.id)
    rule_index = {rule.id: i for i, rule in enumerate(rule_list)}
    driver_rules = [
        {
            "id": rule.id,
            "name": _camel(rule.name or rule.id),
            "shortDescription": {"text": rule.description or rule.id},
            "fullDescription": {
                "text": (rule.__doc__ or rule.description or rule.id).strip()
            },
            "defaultConfiguration": {
                "level": rule.severity.sarif_level,
            },
            "helpUri": f"{HELP_URI_BASE}#{rule.id.lower()}",
        }
        for rule in rule_list
    ]
    results = []
    for f in report.findings:
        result = {
            "ruleId": f.rule,
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproLint/v1": f.fingerprint},
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": driver_rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(doc, indent=2)


def _camel(name: str) -> str:
    """``import-layering`` -> ``ImportLayering`` (SARIF rule names)."""
    return "".join(part.capitalize() for part in name.replace("_", "-").split("-"))
