"""Finding and severity types for the :mod:`repro.lint` analyzer.

A :class:`Finding` is one violation at one source location.  Findings
carry a stable *fingerprint* — a content hash of the rule id, the file
path and the text of the offending line — so a committed baseline
(``lint_baseline.json``) keeps matching findings even when unrelated
edits shift line numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List


class Severity(enum.IntEnum):
    """Rule severity, ordered so ``max()`` picks the worst."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` string for this severity."""
        return {
            Severity.NOTE: "note",
            Severity.WARNING: "warning",
            Severity.ERROR: "error",
        }[self]

    @classmethod
    def parse(cls, name: str) -> "Severity":
        """Parse ``"error"``/``"warning"``/``"note"`` (case-insensitive)."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    source: str = ""
    occurrence: int = field(default=0, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Hashes the rule, the path and the *text* of the flagged line (plus
        an occurrence index to keep duplicates on identical lines apart),
        deliberately excluding the line number so pure line drift does not
        invalidate a baseline entry.
        """
        payload = "\x1f".join(
            (self.rule, self.path, self.source.strip(), str(self.occurrence))
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def render(self) -> str:
        """One ``path:line:col: SEV RULE message`` text line."""
        sev = self.severity.name.lower()
        return f"{self.path}:{self.line}:{self.col}: {sev} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def assign_occurrences(findings: Iterable[Finding]) -> List[Finding]:
    """Number findings that share a fingerprint payload.

    Two findings of the same rule on identically-spelled lines of one file
    would otherwise collide; the occurrence index (assigned in line order)
    keeps their fingerprints distinct and stable.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    seen: Dict[str, int] = {}
    out: List[Finding] = []
    for f in ordered:
        key = "\x1f".join((f.rule, f.path, f.source.strip()))
        n = seen.get(key, 0)
        seen[key] = n + 1
        if n != f.occurrence:
            f = Finding(f.rule, f.severity, f.path, f.line, f.col,
                        f.message, f.source, n)
        out.append(f)
    return out
