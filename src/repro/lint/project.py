"""Cross-file rules: THM001 (theorem tags), LAY001 (layering), API001 (docs).

Each rule collects per-file facts during the engine's single pass and
emits findings in ``finalize`` once the whole tree has been seen.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.lint.engine import FileContext, LintConfig, ProjectRule, register
from repro.lint.findings import Finding, Severity

# --------------------------------------------------------------------------
# THM001 — theorem tags must resolve against docs/theory.md


_KIND_PREFIX = {
    "Theorem": "T",
    "Lemma": "L",
    "Corollary": "C",
    "Claim": "CL",
    "Definition": "D",
}

#: long form: "Theorem 3.1", "Claims 4.2–4.4" (ranges expand).
_LONG_REF = re.compile(
    r"\b(Theorem|Lemma|Corollary|Claim|Definition)s?\s+"
    r"(\d+\.\d+)(?:\s*[–—-]\s*(\d+\.\d+))?"
)

#: short form: "T3.1", "C4.11", "CL3.6", "D4.1", "L4.8".
_SHORT_REF = re.compile(r"\b(CL|[TLCD])(\d+\.\d+)\b")


def _expand(prefix: str, start: str, stop: Optional[str]) -> List[str]:
    """``("CL", "4.2", "4.4") -> ["CL4.2", "CL4.3", "CL4.4"]``."""
    if not stop:
        return [prefix + start]
    s_major, s_minor = start.split(".")
    e_major, e_minor = stop.split(".")
    if s_major != e_major or int(e_minor) < int(s_minor):
        return [prefix + start, prefix + stop]
    return [f"{prefix}{s_major}.{i}"
            for i in range(int(s_minor), int(e_minor) + 1)]


def parse_theory_index(text: str) -> Set[str]:
    """Canonical tags (``T3.1``, ``CL4.2``, ...) cited by ``theory.md``."""
    tags: Set[str] = set()
    for kind, start, stop in _LONG_REF.findall(text):
        tags.update(_expand(_KIND_PREFIX[kind], start, stop))
    for prefix, number in _SHORT_REF.findall(text):
        tags.add(prefix + number)
    return tags


def _docstring_refs(text: str) -> Set[str]:
    """Canonical tags referenced anywhere in one docstring."""
    refs: Set[str] = set()
    for kind, start, stop in _LONG_REF.findall(text):
        refs.update(_expand(_KIND_PREFIX[kind], start, stop))
    for prefix, number in _SHORT_REF.findall(text):
        refs.add(prefix + number)
    return refs


def _iter_docstrings(tree: ast.Module) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(lineno, owner, text)`` for module/class/function docstrings."""
    nodes: List[Tuple[str, ast.AST]] = [("module", tree)]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nodes.append((node.name, node))
    for owner, node in nodes:
        body = getattr(node, "body", [])
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            yield body[0].value.lineno, owner, body[0].value.value


@register
class TheoremTags(ProjectRule):
    """THM001: every theorem citation resolves; theory modules cite one.

    The theory guide (``docs/theory.md``) is the single source of truth
    for which paper results exist.  A docstring citing a result number
    the guide does not know is a dangling reference (usually a typo,
    occasionally an undocumented result — either way the guide must be
    fixed first).  Conversely, modules in the theory
    packages (``repro.core``, ``repro.equilibria``) must cite at least
    one result in their module docstring, so every implementation points
    back at what it implements.
    """

    id = "THM001"
    name = "theorem-tags"
    description = ("docstring theorem tags must resolve against "
                   "docs/theory.md; theory modules must cite a result")
    severity = Severity.ERROR

    def __init__(self) -> None:
        #: relpath -> list of (lineno, owner, tag) references
        self._refs: Dict[str, List[Tuple[int, str, str]]] = {}
        #: relpath -> (module, has_module_docstring_with_tag, module_lineno)
        self._modules: Dict[str, Tuple[str, bool]] = {}

    def collect(self, ctx: FileContext) -> None:
        refs: List[Tuple[int, str, str]] = []
        module_cites = False
        for lineno, owner, text in _iter_docstrings(ctx.tree):
            tags = _docstring_refs(text)
            for tag in sorted(tags):
                refs.append((lineno, owner, tag))
            if owner == "module" and tags:
                module_cites = True
        if refs:
            self._refs[ctx.relpath] = refs
        self._modules[ctx.relpath] = (ctx.module, module_cites)

    def finalize(self, config: LintConfig) -> Iterator[Finding]:
        index: Optional[Set[str]] = None
        if config.theory_doc and Path(config.theory_doc).is_file():
            index = parse_theory_index(
                Path(config.theory_doc).read_text(encoding="utf-8"))
        if index is not None:
            for relpath, refs in sorted(self._refs.items()):
                for lineno, owner, tag in refs:
                    if tag not in index:
                        yield Finding(
                            self.id, self.severity, relpath, lineno, 0,
                            f"docstring of `{owner}` cites {tag}, which "
                            f"does not resolve against "
                            f"{_relname(config, config.theory_doc)}",
                        )
        for relpath, (module, cites) in sorted(self._modules.items()):
            if cites or not module or module.endswith("__init__"):
                continue
            pkg = module.rsplit(".", 1)[0] if "." in module else module
            if pkg in config.theory_packages and "." in module:
                yield Finding(
                    self.id, self.severity, relpath, 1, 0,
                    f"module `{module}` implements theory but its "
                    "docstring cites no paper result (add e.g. "
                    "`Theorem 3.1` or a short tag like `T3.1`)",
                )


def _relname(config: LintConfig, path: Optional[Path]) -> str:
    if path is None:
        return "<theory doc>"
    try:
        return Path(path).resolve().relative_to(config.root).as_posix()
    except ValueError:
        return Path(path).name


# --------------------------------------------------------------------------
# LAY001 — import layering DAG


@register
class ImportLayering(ProjectRule):
    """LAY001: module-level imports respect the package layering DAG.

    The enforced order (bottom to top) is ``obs`` (0, importable from
    everywhere), ``{graphs, matching}``, ``core``, ``equilibria``,
    ``solvers``, ``{simulation, weighted, models}``, ``analysis`` /
    ``lint``, ``cli``, and the root package.  A module-level import may
    only target the same or a lower layer; packages sharing a layer may
    import each other.  Deliberate inversions (e.g. verification helpers
    in ``core`` deferring to ``solvers``) must be function-level lazy
    imports, which this rule intentionally does not see.  The rule also
    rejects module-level import *cycles* regardless of layers.
    """

    id = "LAY001"
    name = "import-layering"
    description = ("module-level imports must follow the layering DAG "
                   "and contain no cycles")
    severity = Severity.ERROR

    def __init__(self) -> None:
        #: importer module -> [(lineno, imported dotted module)]
        self._imports: Dict[str, List[Tuple[int, str]]] = {}
        self._paths: Dict[str, str] = {}

    def collect(self, ctx: FileContext) -> None:
        if not ctx.module:
            return
        edges: List[Tuple[int, str]] = []
        for stmt in ast.walk(ctx.tree):
            # Only *top-level* imports define the layering graph; imports
            # inside functions are deliberate lazy deferrals.
            parent = ctx.parent(stmt)
            if not isinstance(parent, (ast.Module,)) and not (
                    isinstance(parent, (ast.Try, ast.If))
                    and isinstance(ctx.parent(parent), ast.Module)):
                continue
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    edges.append((stmt.lineno, alias.name))
            elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0 \
                    and stmt.module:
                edges.append((stmt.lineno, stmt.module))
        self._imports[ctx.module] = edges
        self._paths[ctx.module] = ctx.relpath

    @staticmethod
    def _layer_of(module: str, layers: Mapping[str, int]) -> Optional[int]:
        """Longest-prefix layer lookup for a dotted module name."""
        parts = module.split(".")
        for i in range(len(parts), 0, -1):
            key = ".".join(parts[:i])
            if key in layers:
                return layers[key]
        return None

    def finalize(self, config: LintConfig) -> Iterator[Finding]:
        layers = config.layers
        root_pkg = None
        if layers:
            # the shortest key is the root package name ("repro").
            root_pkg = min(layers, key=len)

        # -- layer violations ---------------------------------------------
        for module in sorted(self._imports):
            my_layer = self._layer_of(module, layers)
            if my_layer is None:
                continue
            for lineno, target in self._imports[module]:
                if root_pkg and not (target == root_pkg
                                     or target.startswith(root_pkg + ".")):
                    continue  # stdlib / third-party
                # importing inside your own package is always fine
                my_pkg = _package_key(module, layers)
                tgt_pkg = _package_key(target, layers)
                if my_pkg == tgt_pkg:
                    continue
                tgt_layer = self._layer_of(target, layers)
                if tgt_layer is None or tgt_layer <= my_layer:
                    continue
                yield Finding(
                    self.id, self.severity, self._paths[module], lineno, 0,
                    f"`{module}` (layer {my_layer}) imports `{target}` "
                    f"(layer {tgt_layer}); imports must point down the "
                    "layering DAG — invert the dependency or make it a "
                    "function-level lazy import",
                )

        # -- cycles ----------------------------------------------------------
        graph: Dict[str, Set[str]] = {}
        known = set(self._imports)
        for module, edges in self._imports.items():
            targets = set()
            for _, target in edges:
                resolved = self._resolve(target, known)
                if resolved and resolved != module:
                    targets.add(resolved)
            graph[module] = targets
        for cycle in _find_cycles(graph):
            anchor = cycle[0]
            pretty = " -> ".join(cycle + (anchor,))
            yield Finding(
                self.id, self.severity, self._paths[anchor], 1, 0,
                f"module-level import cycle: {pretty}",
            )

    @staticmethod
    def _resolve(target: str, known: Set[str]) -> Optional[str]:
        """Map an imported dotted name onto a scanned module, if any."""
        parts = target.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in known:
                return candidate
        return None


def _package_key(module: str, layers: Mapping[str, int]) -> str:
    """The layer-table key governing ``module`` (longest match)."""
    parts = module.split(".")
    for i in range(len(parts), 0, -1):
        key = ".".join(parts[:i])
        if key in layers:
            return key
    return module


def _find_cycles(graph: Dict[str, Set[str]]) -> List[Tuple[str, ...]]:
    """Elementary cycles via Tarjan SCCs (one finding per SCC > 1 node).

    Self-contained iterative implementation — the engine promises a
    zero-dependency analyzer, so no graphlib/networkx.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[Tuple[str, ...]] = []

    def strongconnect(v: str) -> None:
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in graph:
                    continue
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1:
                    component.sort()
                    sccs.append(tuple(component))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sorted(sccs)


# --------------------------------------------------------------------------
# API001 — __all__ exports must appear in docs/api.md


_API_SECTION = re.compile(r"^##\s+`([\w.]+)`\s*$")
_API_ENTRY = re.compile(r"^-\s+\*\*`(\w+)`\*\*")


def parse_api_doc(text: str) -> Dict[str, Set[str]]:
    """``docs/api.md`` -> {module: documented export names}."""
    documented: Dict[str, Set[str]] = {}
    current: Optional[str] = None
    for line in text.splitlines():
        section = _API_SECTION.match(line)
        if section:
            current = section.group(1)
            documented.setdefault(current, set())
            continue
        if current:
            entry = _API_ENTRY.match(line)
            if entry:
                documented[current].add(entry.group(1))
    return documented


@register
class UndocumentedExport(ProjectRule):
    """API001: everything in ``__all__`` is listed in ``docs/api.md``.

    The API index is generated (``tools/gen_api_docs.py``), so a missing
    name means the index was not regenerated after an export was added —
    the one drift the generator's import-based ``--check`` cannot catch
    when imports fail or the file was hand-edited.
    """

    id = "API001"
    name = "undocumented-export"
    description = "every __all__ export must appear in docs/api.md"
    severity = Severity.ERROR

    def __init__(self) -> None:
        self._exports: Dict[str, Tuple[str, int, Tuple[str, ...]]] = {}

    def collect(self, ctx: FileContext) -> None:
        if not ctx.module or not ctx.exports:
            return
        self._exports[ctx.module] = (ctx.relpath, ctx.exports_line, ctx.exports)

    def finalize(self, config: LintConfig) -> Iterator[Finding]:
        if not config.api_doc or not Path(config.api_doc).is_file():
            return
        documented = parse_api_doc(
            Path(config.api_doc).read_text(encoding="utf-8"))
        doc_name = _relname(config, config.api_doc)
        for module in sorted(self._exports):
            relpath, lineno, exports = self._exports[module]
            known = documented.get(module)
            if known is None:
                yield Finding(
                    self.id, self.severity, relpath, lineno, 0,
                    f"module `{module}` exports {len(exports)} names but "
                    f"has no section in {doc_name}; regenerate with "
                    "`make api-docs`",
                )
                continue
            missing = [name for name in exports if name not in known]
            if missing:
                yield Finding(
                    self.id, self.severity, relpath, lineno, 0,
                    f"exports missing from {doc_name}: "
                    f"{', '.join(missing)}; regenerate with `make api-docs`",
                )
