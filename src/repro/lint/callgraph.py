"""Phase-1 project index: symbol tables and the import-resolved call graph.

Lint v2 analyzes the repository as a *program*, not a bag of files.  This
module builds the machinery phase 2's semantic rules run against:

* :class:`ModuleSymbols` — one module's functions/classes/imports and the
  module-level instances of its classes (``_STATE = _BusState()``);
* :class:`CallGraph` — edges between fully-qualified function keys
  (``repro.obs.events:_publish``), resolved through ``import`` /
  ``from-import`` aliases, ``self`` receivers and module-level instances;
* :class:`ProjectIndex` — the whole phase-1 product: parsed file
  contexts, symbols, the call graph and the per-module lock summaries
  computed by :mod:`repro.lint.semantics`.

Resolution is deliberately *under*-approximate: a call the resolver
cannot attribute (duck-typed receivers, higher-order dispatch) simply
adds no edge.  Semantic rules therefore miss rather than hallucinate —
the right failure mode for a CI gate.  One conservative exception: a
function *definition* nested inside another function gets an implicit
edge from its enclosing function, since closures are usually invoked by
the code that creates them.

Everything here is stdlib-only and single-pass per file; the index for
this repository (~170 modules) builds in well under a second.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "FunctionInfo",
    "ModuleSymbols",
    "CallSite",
    "CallGraph",
    "ProjectIndex",
    "build_symbols",
    "build_callgraph",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Mutable container constructors recognised when classifying state.
MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque",
    "Counter", "ChainMap", "bytearray",
})

#: Synchronisation primitives — never themselves "guarded state".
SYNC_CTORS = frozenset({
    "Lock", "RLock", "Event", "Condition", "Semaphore", "BoundedSemaphore",
    "Barrier", "local",
})


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    module: str
    qualname: str  #: ``f``, ``Cls.meth`` or ``outer.inner``
    node: ast.AST
    relpath: str
    lineno: int
    params: Tuple[str, ...]
    cls: Optional[str] = None  #: enclosing class name, if a method
    is_public: bool = False  #: listed in the module's ``__all__``
    escapes: bool = False  #: referenced as a value (callback, decorator arg)

    @property
    def key(self) -> str:
        """The global call-graph key, ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleSymbols:
    """Everything the resolver knows about one module's namespace."""

    module: str
    relpath: str
    #: qualname -> FunctionInfo (methods keyed ``Cls.meth``)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> its method qualnames
    classes: Dict[str, List[str]] = field(default_factory=dict)
    #: local binding -> dotted target (``_metrics`` -> ``repro.obs.metrics``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = ClassName(...)`` -> class name (local or dotted)
    instances: Dict[str, str] = field(default_factory=dict)
    #: names exported via a literal ``__all__``
    exports: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallSite:
    """One resolved call: who calls whom, where, holding which locks."""

    caller: str  #: function key, or ``module:<module>`` for top level
    callee: str  #: function key
    lineno: int
    #: lock ids (see :mod:`repro.lint.semantics`) lexically held here
    held: FrozenSet[Tuple[str, str, str]] = frozenset()


class CallGraph:
    """Directed call graph over function keys, with path reconstruction."""

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}
        self.callers: Dict[str, List[CallSite]] = {}
        self.sites: List[CallSite] = []

    def add(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, set()).add(site.callee)
        self.callers.setdefault(site.callee, []).append(site)
        self.sites.append(site)

    def successors(self, key: str) -> Tuple[str, ...]:
        return tuple(sorted(self.edges.get(key, ())))

    def find_path(self, start: str,
                  target: Callable[[str], bool],
                  skip_start: bool = False) -> Optional[List[str]]:
        """Shortest path (BFS, name-ordered) from ``start`` to a key
        satisfying ``target``; None when unreachable.

        ``skip_start`` exempts ``start`` itself from the target test, for
        "does this call *reach back*" queries.
        """
        if not skip_start and target(start):
            return [start]
        seen = {start}
        queue: deque = deque([(start, [start])])
        while queue:
            node, path = queue.popleft()
            for succ in self.successors(node):
                if succ in seen:
                    continue
                seen.add(succ)
                if target(succ):
                    return path + [succ]
                queue.append((succ, path + [succ]))
        return None


# --------------------------------------------------------------------------
# symbol collection
# --------------------------------------------------------------------------


def _literal_exports(tree: ast.Module) -> Tuple[str, ...]:
    for stmt in tree.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__all__"
                and isinstance(stmt.value, (ast.List, ast.Tuple))):
            return tuple(
                e.value for e in stmt.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            )
    return ()


class _SymbolVisitor(ast.NodeVisitor):
    """Collect functions, classes, imports and module-level instances."""

    def __init__(self, symbols: ModuleSymbols) -> None:
        self.symbols = symbols
        self._stack: List[str] = []  #: qualname parts
        self._class_stack: List[str] = []

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.symbols.imports[alias.asname] = alias.name
            else:
                head = alias.name.split(".", 1)[0]
                self.symbols.imports.setdefault(head, head)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            # Relative imports: resolve against this module's package.
            pkg_parts = self.symbols.module.split(".")
            if node.level:
                if node.level > len(pkg_parts):
                    return
                base_parts = pkg_parts[: len(pkg_parts) - node.level]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                return
        else:
            base = node.module
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.symbols.imports[local] = f"{base}.{alias.name}"

    # -- definitions ------------------------------------------------------

    def _visit_func(self, node) -> None:
        qualname = ".".join(self._stack + [node.name])
        cls = self._class_stack[-1] if self._class_stack else None
        args = node.args
        params = tuple(
            a.arg for a in
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        info = FunctionInfo(
            module=self.symbols.module, qualname=qualname, node=node,
            relpath=self.symbols.relpath, lineno=node.lineno, params=params,
            cls=cls if self._stack and cls == self._stack[-1] else None,
            is_public=node.name in self.symbols.exports,
        )
        self.symbols.functions[qualname] = info
        if info.cls:
            self.symbols.classes.setdefault(info.cls, []).append(qualname)
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.symbols.classes.setdefault(node.name, [])
        self._stack.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Module-level `NAME = ClassName(...)` instance tracking.
        if not self._stack and isinstance(node.value, ast.Call):
            ctor = _dotted_name(node.value.func)
            if ctor:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.symbols.instances[target.id] = ctor
        self.generic_visit(node)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def build_symbols(module: str, relpath: str, tree: ast.Module) -> ModuleSymbols:
    """Collect one module's symbol table."""
    symbols = ModuleSymbols(module=module, relpath=relpath,
                            exports=_literal_exports(tree))
    _SymbolVisitor(symbols).visit(tree)
    return symbols


# --------------------------------------------------------------------------
# call resolution
# --------------------------------------------------------------------------


class Resolver:
    """Map call expressions onto function keys across the project."""

    def __init__(self, symbols: Mapping[str, ModuleSymbols]) -> None:
        self.symbols = symbols
        self._modules = set(symbols)

    def resolve_dotted(self, dotted: str) -> Optional[str]:
        """``pkg.mod.Cls.meth`` -> ``pkg.mod:Cls.meth`` (longest prefix)."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            if module not in self._modules:
                continue
            rest = ".".join(parts[i:])
            return self._in_module(module, rest)
        return None

    def _in_module(self, module: str, qualname: str) -> Optional[str]:
        syms = self.symbols.get(module)
        if syms is None:
            return None
        if qualname in syms.functions:
            return f"{module}:{qualname}"
        if qualname in syms.classes:
            init = f"{qualname}.__init__"
            if init in syms.functions:
                return f"{module}:{init}"
        # `from pkg.mod import name` where pkg.mod re-exports: follow the
        # alias one hop through the target module's own imports.
        target = syms.instances.get(qualname)
        if target:
            return self._in_module(module, f"{target}.__init__".replace(
                "__init__.__init__", "__init__"))
        alias = syms.imports.get(qualname.split(".", 1)[0])
        if alias:
            rest = qualname.split(".", 1)
            dotted = alias if len(rest) == 1 else f"{alias}.{rest[1]}"
            if dotted != f"{module}.{qualname}":
                return self.resolve_dotted(dotted)
        return None

    def resolve_call(self, func: ast.AST, syms: ModuleSymbols,
                     enclosing_class: Optional[str]) -> Optional[str]:
        """The function key a call expression targets, if determinable."""
        if isinstance(func, ast.Name):
            name = func.id
            local = self._in_module(syms.module, name)
            if local:
                return local
            if name in syms.imports:
                return self.resolve_dotted(syms.imports[name])
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                owner = base.id
                if owner == "self" and enclosing_class:
                    return self._in_module(
                        syms.module, f"{enclosing_class}.{func.attr}")
                if owner == "cls" and enclosing_class:
                    return self._in_module(
                        syms.module, f"{enclosing_class}.{func.attr}")
                if owner in syms.instances:
                    cls = syms.instances[owner]
                    hit = self._in_module(syms.module, f"{cls}.{func.attr}")
                    if hit:
                        return hit
                    if cls in syms.imports or "." in cls:
                        dotted = syms.imports.get(cls, cls)
                        return self.resolve_dotted(f"{dotted}.{func.attr}")
                    return None
            dotted = _dotted_name(func)
            if dotted:
                head, _, rest = dotted.partition(".")
                if head in syms.imports:
                    dotted = syms.imports[head] + ("." + rest if rest else "")
                return self.resolve_dotted(dotted)
        return None


class _CallCollector(ast.NodeVisitor):
    """Walk one module emitting resolved :class:`CallSite` records.

    Tracks the lexical ``with``-lock stack so every call site carries the
    set of lock ids held where it happens (phase-1 raw material for the
    LCK rules); lock-expression matching is delegated to the callable
    passed by :mod:`repro.lint.semantics`.
    """

    def __init__(self, syms: ModuleSymbols, resolver: Resolver,
                 graph: CallGraph,
                 lock_of_expr: Callable[[ast.AST, Optional[str]],
                                        Optional[Tuple[str, str, str]]]) -> None:
        self.syms = syms
        self.resolver = resolver
        self.graph = graph
        self.lock_of_expr = lock_of_expr
        self._stack: List[str] = []
        self._class_stack: List[str] = []
        self._kinds: List[str] = []  #: "func" | "class", parallel to _stack
        self._held: List[Tuple[str, str, str]] = []

    @property
    def _caller(self) -> str:
        if self._stack:
            return f"{self.syms.module}:{'.'.join(self._stack)}"
        return f"{self.syms.module}:<module>"

    @property
    def _cls(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    def _visit_func(self, node) -> None:
        # Conservative closure edge: a *function* very likely invokes
        # (or schedules) a function it defines inline.  A method defined
        # in a class body is not a closure — no edge there.
        if self._stack and self._kinds[-1] == "func":
            inner = f"{self.syms.module}:{'.'.join(self._stack + [node.name])}"
            self.graph.add(CallSite(self._caller, inner, node.lineno,
                                    frozenset(self._held)))
        self._stack.append(node.name)
        self._kinds.append("func")
        held, self._held = self._held, []
        self.generic_visit(node)
        self._held = held
        self._kinds.pop()
        self._stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self._kinds.append("class")
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        self._kinds.pop()
        self._stack.pop()

    def visit_With(self, node) -> None:
        acquired: List[Tuple[str, str, str]] = []
        for item in node.items:
            lock = self.lock_of_expr(item.context_expr, self._cls)
            if lock is not None:
                acquired.append(lock)
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self._held[len(self._held) - len(acquired):]

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        callee = self.resolver.resolve_call(node.func, self.syms, self._cls)
        if callee is not None:
            self.graph.add(CallSite(self._caller, callee, node.lineno,
                                    frozenset(self._held)))
        # Visit children, skipping the call target itself so a *called*
        # function is not mistaken for an escaping value reference.
        func = node.func
        if isinstance(func, ast.Attribute):
            self.visit(func.value)
        elif not isinstance(func, ast.Name):
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare reference to a local function outside call position means
        # it escapes (callback, decorator argument, table entry).
        info = self.syms.functions.get(node.id)
        if info is not None and isinstance(node.ctx, ast.Load):
            info.escapes = True

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name):
            owner = node.value.id
            qual = None
            if owner == "self" and self._cls:
                qual = f"{self._cls}.{node.attr}"
            elif owner in self.syms.instances:
                qual = f"{self.syms.instances[owner]}.{node.attr}"
            if qual and qual in self.syms.functions \
                    and isinstance(node.ctx, ast.Load):
                self.syms.functions[qual].escapes = True
        self.generic_visit(node)


def build_callgraph(
    symbols: Mapping[str, ModuleSymbols],
    trees: Mapping[str, ast.Module],
    lock_of_expr: Optional[Callable] = None,
) -> CallGraph:
    """Resolve every call in every module into one :class:`CallGraph`.

    ``lock_of_expr(expr, enclosing_class) -> lock id or None`` annotates
    call sites with the lexically held locks; omit it for a plain graph.
    """
    resolver = Resolver(symbols)
    graph = CallGraph()
    matcher = lock_of_expr or (lambda expr, cls: None)
    for module in sorted(symbols):
        tree = trees.get(module)
        if tree is None:
            continue
        _CallCollector(symbols[module], resolver, graph, matcher).visit(tree)
    return graph


# --------------------------------------------------------------------------
# the phase-1 product
# --------------------------------------------------------------------------


@dataclass
class ProjectIndex:
    """Everything phase 2 knows about the project.

    Built once per run by :meth:`build`; semantic rules receive it via
    :meth:`repro.lint.engine.SemanticRule.analyze`.
    """

    #: relpath -> parsed FileContext
    contexts: Dict[str, object]
    #: dotted module name -> FileContext
    by_module: Dict[str, object]
    #: dotted module name -> symbol table
    symbols: Dict[str, ModuleSymbols]
    graph: CallGraph
    #: dotted module name -> lock summary (see repro.lint.semantics)
    locks: Dict[str, object]
    #: function key -> locks provably held at *every* call site
    must_hold: Dict[str, FrozenSet[Tuple[str, str, str]]]

    def function(self, key: str) -> Optional[FunctionInfo]:
        module, _, qualname = key.partition(":")
        syms = self.symbols.get(module)
        return syms.functions.get(qualname) if syms else None

    def functions(self) -> Iterable[FunctionInfo]:
        for module in sorted(self.symbols):
            syms = self.symbols[module]
            for qualname in sorted(syms.functions):
                yield syms.functions[qualname]

    @classmethod
    def build(cls, contexts: Sequence[object]) -> "ProjectIndex":
        """Assemble the index from parsed :class:`FileContext` objects."""
        from repro.lint import semantics

        ctx_by_path: Dict[str, object] = {}
        by_module: Dict[str, object] = {}
        symbols: Dict[str, ModuleSymbols] = {}
        trees: Dict[str, ast.Module] = {}
        for ctx in contexts:
            ctx_by_path[ctx.relpath] = ctx
            module = ctx.module or f"<file:{ctx.relpath}>"
            by_module[module] = ctx
            symbols[module] = build_symbols(module, ctx.relpath, ctx.tree)
            trees[module] = ctx.tree

        locks = {
            module: semantics.summarize_module(symbols[module], by_module[module])
            for module in sorted(symbols)
        }

        def lock_of(module: str):
            summary = locks[module]
            return lambda expr, cls: summary.lock_of_expr(expr, cls)

        resolver = Resolver(symbols)
        graph = CallGraph()
        for module in sorted(symbols):
            collector = _CallCollector(symbols[module], resolver, graph,
                                       lock_of(module))
            collector.visit(trees[module])

        must_hold = _propagate_must_hold(symbols, graph)
        index = cls(contexts=ctx_by_path, by_module=by_module,
                    symbols=symbols, graph=graph, locks=locks,
                    must_hold=must_hold)
        for summary in locks.values():
            summary.finish(index)
        return index


def _propagate_must_hold(
    symbols: Mapping[str, ModuleSymbols],
    graph: CallGraph,
) -> Dict[str, FrozenSet[Tuple[str, str, str]]]:
    """Locks provably held whenever a function runs.

    Intersection dataflow over call sites: a *private*, non-escaping
    function whose every visible call site holds lock ``L`` inherits
    ``L`` (its body counts as guarded for LCK001).  Public or escaping
    functions can be called from anywhere, so they inherit nothing.
    Call sites inside ``__init__`` methods and at module top level are
    construction-time and excluded from the intersection — an object
    being built is not yet shared.
    """
    empty: FrozenSet[Tuple[str, str, str]] = frozenset()
    closed: Dict[str, bool] = {}
    for module in symbols.values():
        for info in module.functions.values():
            private = info.name.startswith("_") and not (
                info.name.startswith("__") and info.name.endswith("__"))
            closed[info.key] = private and not info.escapes
    # ⊤ for closed-world functions, ∅ for open ones; iterate to fixpoint.
    state: Dict[str, Optional[FrozenSet]] = {
        key: (None if is_closed else empty)
        for key, is_closed in closed.items()
    }
    changed = True
    while changed:
        changed = False
        for key in sorted(state):
            if not closed.get(key):
                continue
            meet: Optional[FrozenSet] = None
            for site in graph.callers.get(key, ()):
                caller = site.caller
                if caller.endswith(":<module>"):
                    continue  # construction / import time
                caller_qual = caller.partition(":")[2]
                if caller_qual.rsplit(".", 1)[-1] == "__init__":
                    continue
                inherited = state.get(caller, empty)
                if inherited is None:
                    continue  # caller still ⊤: no constraint yet
                here = site.held | inherited
                meet = here if meet is None else (meet & here)
            new = meet if meet is not None else state[key]
            if new is not None and new != state[key]:
                state[key] = new
                changed = True
    return {key: (value if value is not None else empty)
            for key, value in state.items()}
