"""Baseline workflow for :mod:`repro.lint`.

A baseline (``lint_baseline.json`` at the repo root) is the set of
finding fingerprints the project has decided to live with.  ``repro lint
--baseline`` subtracts them from the report, so CI only fails on *new*
debt; ``repro lint --write-baseline`` re-snapshots the current findings.
Fingerprints hash the offending line's text, not its number, so
unrelated edits do not churn the file (see
:attr:`repro.lint.findings.Finding.fingerprint`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.lint.engine import LintReport
from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint_baseline.json"


def render_baseline(findings: Iterable[Finding]) -> str:
    """Serialize findings as a committed baseline document."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    doc = {"version": BASELINE_VERSION, "findings": entries}
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the baseline file; returns the number of entries."""
    text = render_baseline(findings)
    Path(path).write_text(text, encoding="utf-8")
    return len(json.loads(text)["findings"])


def load_baseline(path: Path) -> Dict[str, dict]:
    """fingerprint -> entry; empty when the file does not exist."""
    path = Path(path)
    if not path.is_file():
        return {}
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}")
    return {e["fingerprint"]: e for e in doc.get("findings", [])}


def apply_baseline(report: LintReport, path: Path) -> LintReport:
    """Subtract baselined findings; annotates applied/stale counts."""
    known = load_baseline(path)
    if not known:
        return report
    kept: List[Finding] = []
    matched = set()
    for f in report.findings:
        if f.fingerprint in known:
            matched.add(f.fingerprint)
        else:
            kept.append(f)
    report.findings = kept
    report.baseline_applied = len(matched)
    report.baseline_stale = len(set(known) - matched)
    return report
