"""repro — a full reproduction of *The Power of the Defender* (ICDCS 2006).

The package implements the Tuple-model network security game ``Π_k(G)``:
``ν`` attackers each pick a vertex of a graph, one defender picks a tuple
of ``k`` distinct edges and catches every attacker standing on an endpoint.
It provides, from scratch:

* the game, its configurations and profit functionals
  (:mod:`repro.core`);
* the complete Nash-equilibrium theory of the paper — pure equilibria
  (Theorem 3.1), the mixed characterization (Theorem 3.4), k-matching
  equilibria, Algorithm ``A_tuple`` and the Theorem 4.5 reduction
  (:mod:`repro.equilibria`);
* the graph/matching substrate that makes it all polynomial
  (:mod:`repro.graphs`, :mod:`repro.matching`);
* unstructured baselines (exact LP minimax, fictitious play,
  coverage best response — :mod:`repro.solvers`);
* a Monte-Carlo playout engine (:mod:`repro.simulation`) and analysis
  helpers (:mod:`repro.analysis`).

Quickstart
----------
>>> from repro import TupleGame, solve_game
>>> from repro.graphs.generators import complete_bipartite_graph
>>> game = TupleGame(complete_bipartite_graph(2, 4), k=2, nu=5)
>>> result = solve_game(game)
>>> result.kind
'k-matching'
>>> round(result.defender_gain, 6)   # k * nu / rho(G) = 2*5/4
2.5
"""

from repro.core import (
    MixedConfiguration,
    PureConfiguration,
    GameError,
    TupleGame,
    check_characterization,
    expected_profit_tp,
    expected_profit_vp,
    find_pure_nash,
    is_mixed_nash,
    is_pure_nash,
    pure_nash_exists,
    verify_best_responses,
)
from repro.equilibria import (
    NoEquilibriumFoundError,
    SolveResult,
    algorithm_a,
    algorithm_a_tuple,
    edge_to_tuple,
    matching_equilibrium,
    solve_game,
    tuple_to_edge,
)
from repro.graphs import Graph

__version__ = "1.0.0"

__all__ = [
    "MixedConfiguration",
    "PureConfiguration",
    "GameError",
    "TupleGame",
    "check_characterization",
    "expected_profit_tp",
    "expected_profit_vp",
    "find_pure_nash",
    "is_mixed_nash",
    "is_pure_nash",
    "pure_nash_exists",
    "verify_best_responses",
    "NoEquilibriumFoundError",
    "SolveResult",
    "algorithm_a",
    "algorithm_a_tuple",
    "edge_to_tuple",
    "matching_equilibrium",
    "solve_game",
    "tuple_to_edge",
    "Graph",
    "__version__",
]
