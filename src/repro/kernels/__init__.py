"""Reusable compute kernels for the solver hot paths.

The kernels layer sits between the graph/game substrate and the solvers:
anything that several solvers re-derive per call — and that depends only
on the *instance*, not on the query — is precomputed once here and shared.
Today that is the coverage oracle (defender best response, the inner loop
of the double-oracle and fictitious-play equilibrium solvers and of
first-principles NE verification); the amortized-precompute pattern it
establishes is what future scaling work (sharding, async batching) builds
on.  See ``docs/performance.md`` for the lifecycle and the measured wins.
"""

from repro.kernels.coverage import (
    CoverageOracle,
    clear_shared_oracles,
    shared_oracle,
)

__all__ = ["CoverageOracle", "shared_oracle", "clear_shared_oracles"]
