"""The coverage-oracle kernel: amortized defender best response.

Condition 3(a) of Theorem 3.4 and every iterative solver in this library
(double oracle, fictitious play, first-principles NE verification) ask the
same question over and over: *given attacker masses on the vertices, which
``k`` edges cover the most mass?*  The seed implementation re-derived the
graph structure — sorted edge order, endpoint lookups, incidence — on every
call, which dominates wall-clock once a solver queries the same ``(graph,
k)`` hundreds of times per solve.

:class:`CoverageOracle` is built **once** per ``(graph, k)`` and precomputes

* the deterministic (lexicographic) edge order and the edge count ``m``;
* vertex → slot and edge → endpoint-slot index arrays, so queries run on
  dense integer arrays instead of hash lookups;
* the incidence index (vertex slot → incident edge slots);
* reusable prefix-sum machinery for the branch-and-bound admissible bound.

Queries then take only the *changing* attacker weight vector:

* :meth:`CoverageOracle.exhaustive` — exact, depth-first enumeration of
  ``E^k`` in lexicographic order with incremental gains (no per-tuple set
  construction);
* :meth:`CoverageOracle.branch_and_bound` — exact, two-phase: a
  static-weight-ordered bound-and-prune pass establishes the optimal
  *value*, then a lexicographic search with suffix top-``r`` bounds finds
  the canonical (lexicographically smallest) optimal tuple;
* :meth:`CoverageOracle.greedy` — the ``(1 − 1/e)`` approximation,
  iterating the presorted edge list with a visited mask (no per-round
  re-sorting);
* :meth:`CoverageOracle.best` — the dispatching entry point mirroring
  :func:`repro.solvers.best_response.best_tuple`;
* :meth:`CoverageOracle.query_many` — batched queries with an opt-in
  ``multiprocessing`` fan-out for benchmark-zoo sweeps.

Both exact methods return the **lexicographically smallest** optimal tuple,
so they agree exactly even on ties (the seed branch and bound did not — its
``≤ incumbent + ε`` prune could discard an equal-value, lexicographically
smaller tuple).

:func:`shared_oracle` memoizes oracles per ``(graph, k)`` in a bounded
process-wide cache (graphs are immutable and hashable), which is what lets
`double_oracle` / `fictitious_play` / the verification bridges amortize one
precompute across an entire solve.  Everything is observable through
``perf.kernel.*`` metrics (see ``docs/performance.md``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from heapq import heappush, heapreplace
from math import comb
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tuples import EdgeTuple, tuple_vertices
from repro.graphs.core import Edge, Graph, GraphError, Vertex, tuple_sort_key
from repro.obs import get_logger, metrics, tracing

__all__ = ["CoverageOracle", "shared_oracle", "clear_shared_oracles"]

_log = get_logger("repro.kernels.coverage")

_EPS = 1e-15
"""Value-comparison tolerance, identical to the seed best-response code."""

_AUTO_DFS_LIMIT = 20_000
"""``auto`` dispatch: exhaustive DFS below this many tuples, bnb above."""

_EXHAUSTIVE_LIMIT = 100_000
"""Compatibility ceiling mirrored from the seed ``best_tuple`` dispatcher."""


class CoverageOracle:
    """Answer maximum-weight ``k``-edge coverage queries for one graph.

    Parameters
    ----------
    graph:
        The (immutable) graph; its structure is indexed once, here.
    k:
        Number of edges in a defender tuple, ``1 <= k <= m``.

    Notes
    -----
    The oracle is read-only after construction and safe to share across
    solver iterations; per-query state lives on the stack.  The memoized
    coverage views (:meth:`coverage_sets`, :meth:`coverage_matrix`) keep a
    single-entry cache each, sized for the simulate-same-config-repeatedly
    access pattern of the benchmark zoo.
    """

    __slots__ = (
        "graph",
        "k",
        "edges",
        "m",
        "n",
        "vertices",
        "tuple_count",
        "_vertex_slot",
        "_eu",
        "_ev",
        "_incidence",
        "_cover_sets_key",
        "_cover_sets_val",
        "_cover_matrix_key",
        "_cover_matrix_val",
    )

    def __init__(self, graph: Graph, k: int) -> None:
        if not 1 <= k <= graph.m:
            raise GraphError(f"k must satisfy 1 <= k <= m={graph.m}; got {k}")
        with metrics.timer("perf.kernel.build.seconds"):
            self.graph = graph
            self.k = k
            self.edges: List[Edge] = graph.sorted_edges()
            self.m = len(self.edges)
            self.vertices: List[Vertex] = graph.sorted_vertices()
            self.n = len(self.vertices)
            self.tuple_count = comb(self.m, k)
            self._vertex_slot: Dict[Vertex, int] = {
                v: i for i, v in enumerate(self.vertices)
            }
            slot = self._vertex_slot
            self._eu: List[int] = [slot[u] for u, _ in self.edges]
            self._ev: List[int] = [slot[v] for _, v in self.edges]
            incidence: List[List[int]] = [[] for _ in range(self.n)]
            for i in range(self.m):
                incidence[self._eu[i]].append(i)
                incidence[self._ev[i]].append(i)
            self._incidence: Tuple[Tuple[int, ...], ...] = tuple(
                tuple(slots) for slots in incidence
            )
            self._cover_sets_key: Optional[Tuple[EdgeTuple, ...]] = None
            self._cover_sets_val: Dict[EdgeTuple, FrozenSet[Vertex]] = {}
            self._cover_matrix_key: Optional[Tuple[EdgeTuple, ...]] = None
            self._cover_matrix_val = None
        metrics.counter("perf.kernel.build.count").inc()

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    def vertex_slot(self, v: Vertex) -> int:
        """Dense index of ``v`` in the deterministic vertex order."""
        return self._vertex_slot[v]

    def incident_edge_slots(self, v: Vertex) -> Tuple[int, ...]:
        """Slots (into :attr:`edges`) of the edges incident to ``v``."""
        return self._incidence[self._vertex_slot[v]]

    def _weight_array(self, weights: Mapping[Vertex, float]) -> List[float]:
        """Densify an attacker weight mapping onto the vertex slots.

        Vertices absent from ``weights`` get mass 0; keys outside the
        graph are ignored — both exactly as the seed solvers treated
        ``weights.get(v, 0.0)``.
        """
        w = [0.0] * self.n
        slot = self._vertex_slot
        for v, mass in weights.items():
            i = slot.get(v)
            if i is not None:
                w[i] = mass
        return w

    def _slots_to_tuple(self, slots: Sequence[int]) -> EdgeTuple:
        edges = self.edges
        return tuple(edges[i] for i in slots)

    # ------------------------------------------------------------------
    # exact query: exhaustive DFS
    # ------------------------------------------------------------------
    def exhaustive(self, weights: Mapping[Vertex, float]) -> Tuple[EdgeTuple, float]:
        """Exact maximum by lexicographic depth-first enumeration of ``E^k``.

        Semantically identical to the seed full enumeration (the
        lexicographically smallest optimal tuple wins), but gains are
        accumulated incrementally along the DFS — no per-tuple vertex-set
        construction — which is an order of magnitude faster.
        """
        with metrics.timer("perf.kernel.query.seconds"):
            metrics.counter("perf.kernel.query.exhaustive.count").inc()
            w = self._weight_array(weights)
            return self._exhaustive_dfs(w)

    def _exhaustive_dfs(self, w: List[float]) -> Tuple[EdgeTuple, float]:
        eu, ev, m, k = self._eu, self._ev, self.m, self.k
        covered = bytearray(self.n)
        chosen: List[int] = []
        best_value = float("-inf")
        best_slots: Optional[Tuple[int, ...]] = None

        def descend(start: int, value: float) -> None:
            nonlocal best_value, best_slots
            depth = len(chosen)
            if depth == k:
                if value > best_value + _EPS:
                    best_value = value
                    best_slots = tuple(chosen)
                return
            for i in range(start, m - (k - depth) + 1):
                u = eu[i]
                v = ev[i]
                gain = 0.0
                if not covered[u]:
                    gain += w[u]
                if not covered[v]:
                    gain += w[v]
                covered[u] += 1
                covered[v] += 1
                chosen.append(i)
                descend(i + 1, value + gain)
                chosen.pop()
                covered[u] -= 1
                covered[v] -= 1

        descend(0, 0.0)
        assert best_slots is not None
        return self._slots_to_tuple(best_slots), best_value

    # ------------------------------------------------------------------
    # exact query: branch and bound
    # ------------------------------------------------------------------
    def branch_and_bound(
        self, weights: Mapping[Vertex, float]
    ) -> Tuple[EdgeTuple, float]:
        """Exact maximum via two-phase branch and bound.

        Phase 1 finds the optimal *value*: edges are visited in
        descending static-weight order (``w(u) + w(v)`` bounds any edge's
        marginal gain) with a prefix-sum admissible bound, seeded with the
        greedy value as the initial incumbent.  Phase 2 re-searches in
        lexicographic order — pruned by suffix top-``r`` static-weight
        bounds against the now-known optimum — and stops at the first
        tuple reaching it, which by construction is the lexicographically
        smallest optimal tuple.  The two exact methods therefore agree
        *exactly*, ties included (the seed bnb did not).
        """
        with metrics.timer("perf.kernel.query.seconds"):
            metrics.counter("perf.kernel.query.bnb.count").inc()
            w = self._weight_array(weights)
            static = [w[self._eu[i]] + w[self._ev[i]] for i in range(self.m)]
            order = sorted(range(self.m), key=static.__getitem__, reverse=True)
            value = self._bnb_value(w, static, order)
            slots, exact_value = self._lex_argmax(w, static, order, value)
            return self._slots_to_tuple(slots), exact_value

    def _greedy_value(self, w: List[float]) -> float:
        """Value of the greedy cover — a fast incumbent for phase 1."""
        eu, ev, m, k = self._eu, self._ev, self.m, self.k
        covered = bytearray(self.n)
        used = bytearray(m)
        value = 0.0
        for _ in range(k):
            best_slot = -1
            best_gain = float("-inf")
            for i in range(m):
                if used[i]:
                    continue
                u = eu[i]
                v = ev[i]
                gain = 0.0
                if not covered[u]:
                    gain += w[u]
                if not covered[v]:
                    gain += w[v]
                if gain > best_gain + _EPS:
                    best_gain = gain
                    best_slot = i
            used[best_slot] = 1
            covered[eu[best_slot]] = 1
            covered[ev[best_slot]] = 1
            value += best_gain
        return value

    def _bnb_value(
        self, w: List[float], static: List[float], order: List[int]
    ) -> float:
        """Phase 1: the optimal coverage value (argmax deferred to phase 2)."""
        m, k = self.m, self.k
        oe_u = [self._eu[i] for i in order]
        oe_v = [self._ev[i] for i in order]
        prefix = [0.0]
        for i in order:
            prefix.append(prefix[-1] + static[i])
        best = self._greedy_value(w)
        covered = bytearray(self.n)

        def descend(index: int, depth: int, value: float) -> None:
            nonlocal best
            if depth == k:
                if value > best + _EPS:
                    best = value
                return
            remaining = k - depth
            if m - index < remaining:
                return
            if value + prefix[index + remaining] - prefix[index] <= best + _EPS:
                return
            u = oe_u[index]
            v = oe_v[index]
            gain = 0.0
            if not covered[u]:
                gain += w[u]
            if not covered[v]:
                gain += w[v]
            covered[u] += 1
            covered[v] += 1
            descend(index + 1, depth + 1, value + gain)
            covered[u] -= 1
            covered[v] -= 1
            descend(index + 1, depth, value)

        descend(0, 0, 0.0)
        return best

    def _suffix_top_sums(self, static: List[float]) -> List[List[float]]:
        """``sums[i][r]``: total of the ``r`` largest static weights in
        slots ``i..m-1`` (``r <= k``) — the admissible bound for the
        lexicographic phase-2 search."""
        m, k = self.m, self.k
        sums: List[List[float]] = [[] for _ in range(m + 1)]
        sums[m] = [0.0]
        heap: List[float] = []
        for i in range(m - 1, -1, -1):
            s = static[i]
            if len(heap) < k:
                heappush(heap, s)
            elif s > heap[0]:
                heapreplace(heap, s)
            acc = [0.0]
            for x in sorted(heap, reverse=True):
                acc.append(acc[-1] + x)
            sums[i] = acc
        return sums

    def _lex_argmax(
        self,
        w: List[float],
        static: List[float],
        order: List[int],
        target: float,
    ) -> Tuple[Tuple[int, ...], float]:
        """Phase 2: lexicographically first tuple with value ``>= target − ε``."""
        found = self._lex_greedy(w, static, order, target, _EPS)
        if found is None:
            # Unreachable in exact arithmetic (the phase-1 value is
            # attained by some tuple); guards against pathological
            # rounding by retrying with a looser, still-benign margin.
            found = self._lex_greedy(w, static, order, target, 1e-9)
        assert found is not None
        return found

    def _lex_greedy(
        self,
        w: List[float],
        static: List[float],
        order: List[int],
        target: float,
        margin: float,
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """Build the lex-smallest tuple reaching ``target − margin``.

        Slot by slot: take the smallest edge slot whose remainder can
        still complete to the target — feasibility checked by a
        static-order decision probe, which prunes orders of magnitude
        harder than searching completions in lexicographic order.  Gains
        accumulate in increasing slot order, i.e. the exact summation
        order of the exhaustive DFS, so the two exact methods return
        bit-identical values.
        """
        eu, ev, m, k = self._eu, self._ev, self.m, self.k
        sums = self._suffix_top_sums(static)
        covered = bytearray(self.n)
        chosen: List[int] = []
        value = 0.0
        threshold = target - margin
        start = 0
        for depth in range(k):
            r = k - depth
            placed = False
            for i in range(start, m - r + 1):
                u = eu[i]
                v = ev[i]
                gain = 0.0
                if not covered[u]:
                    gain += w[u]
                if not covered[v]:
                    gain += w[v]
                acc = sums[i + 1]
                bound = acc[r - 1] if r - 1 < len(acc) else acc[-1]
                if value + gain + bound < threshold:
                    continue
                covered[u] += 1
                covered[v] += 1
                if self._probe(
                    w, static, order, i + 1, r - 1,
                    threshold - value - gain, covered,
                ):
                    chosen.append(i)
                    value += gain
                    start = i + 1
                    placed = True
                    break
                covered[u] -= 1
                covered[v] -= 1
            if not placed:
                return None
        return tuple(chosen), value

    def _probe(
        self,
        w: List[float],
        static: List[float],
        order: List[int],
        min_slot: int,
        need: int,
        deficit: float,
        covered: bytearray,
    ) -> bool:
        """Can ``need`` unused slots ``>= min_slot`` add mass ``>= deficit``?

        Explores candidates in descending static-weight order with a
        prefix-sum admissible bound and exits on the first success — a
        pure decision search, so refuting an infeasible lex candidate is
        as fast as the phase-1 value search.
        """
        if deficit <= 0.0:
            return True  # weights are non-negative: any completion works
        if need == 0:
            return False
        eu, ev = self._eu, self._ev
        slots = [i for i in order if i >= min_slot]
        if len(slots) < need:
            return False
        prefix = [0.0]
        for i in slots:
            prefix.append(prefix[-1] + static[i])
        total = len(slots)

        def search(pos: int, need: int, deficit: float) -> bool:
            if deficit <= 0.0:
                return total - pos >= need
            if need == 0 or total - pos < need:
                return False
            if prefix[pos + need] - prefix[pos] < deficit:
                return False
            i = slots[pos]
            u = eu[i]
            v = ev[i]
            gain = 0.0
            if not covered[u]:
                gain += w[u]
            if not covered[v]:
                gain += w[v]
            covered[u] += 1
            covered[v] += 1
            hit = search(pos + 1, need - 1, deficit - gain)
            covered[u] -= 1
            covered[v] -= 1
            if hit:
                return True
            return search(pos + 1, need, deficit)

        return search(0, need, deficit)

    # ------------------------------------------------------------------
    # approximate query: greedy
    # ------------------------------------------------------------------
    def greedy(self, weights: Mapping[Vertex, float]) -> Tuple[EdgeTuple, float]:
        """Greedy ``(1 − 1/e)``-approximate coverage.

        Scans the precomputed lexicographic edge order with a used-edge
        mask — the documented deterministic tie-break (first edge among
        the maximal marginal gains) is preserved, without the seed's
        per-round ``sorted(remaining)`` re-sort and set churn.
        """
        with metrics.timer("perf.kernel.query.seconds"):
            metrics.counter("perf.kernel.query.greedy.count").inc()
            w = self._weight_array(weights)
            eu, ev, m, k = self._eu, self._ev, self.m, self.k
            covered = bytearray(self.n)
            used = bytearray(m)
            slots: List[int] = []
            value = 0.0
            for _ in range(k):
                best_slot = -1
                best_gain = float("-inf")
                for i in range(m):
                    if used[i]:
                        continue
                    u = eu[i]
                    v = ev[i]
                    gain = 0.0
                    if not covered[u]:
                        gain += w[u]
                    if not covered[v]:
                        gain += w[v]
                    if gain > best_gain + _EPS:
                        best_gain = gain
                        best_slot = i
                used[best_slot] = 1
                covered[eu[best_slot]] = 1
                covered[ev[best_slot]] = 1
                slots.append(best_slot)
                value += best_gain
            slots.sort()
            return self._slots_to_tuple(slots), value

    # ------------------------------------------------------------------
    # dispatch + batching
    # ------------------------------------------------------------------
    def best(
        self,
        weights: Mapping[Vertex, float],
        method: str = "auto",
        exhaustive_limit: int = _EXHAUSTIVE_LIMIT,
    ) -> Tuple[EdgeTuple, float]:
        """Best ``k``-edge coverage against ``weights``.

        ``method`` is one of ``"auto"``, ``"exhaustive"``, ``"bnb"`` or
        ``"greedy"`` — the contract of
        :func:`repro.solvers.best_response.best_tuple`.  Since both exact
        strategies return the canonical optimal tuple, ``auto`` is free
        to pick whichever is faster: exhaustive DFS for small ``C(m,
        k)``, branch and bound beyond.
        """
        metrics.counter("perf.kernel.query.count").inc()
        if method == "exhaustive":
            return self.exhaustive(weights)
        if method == "bnb":
            return self.branch_and_bound(weights)
        if method == "greedy":
            return self.greedy(weights)
        if method != "auto":
            raise ValueError(f"unknown method {method!r}")
        if self.tuple_count <= min(exhaustive_limit, _AUTO_DFS_LIMIT):
            return self.exhaustive(weights)
        return self.branch_and_bound(weights)

    def query_many(
        self,
        weight_vectors: Iterable[Mapping[Vertex, float]],
        method: str = "auto",
        processes: Optional[int] = None,
    ) -> List[Tuple[EdgeTuple, float]]:
        """Answer a batch of weight vectors, optionally in parallel.

        With ``processes`` unset (or ``<= 1``) the batch runs serially in
        this process.  With ``processes > 1`` the work fans out over a
        ``multiprocessing`` pool — each worker rebuilds the oracle once
        from the pickled graph structure, so the fan-out pays off for the
        long sweeps of the benchmark zoo and
        :func:`repro.analysis.schedule.best_response_schedule`, not for
        single queries.  Results are returned in input order either way,
        and any pool failure (platforms without fork/spawn support)
        degrades to the serial path with a logged warning.
        """
        vectors = [dict(wv) for wv in weight_vectors]
        metrics.counter("perf.kernel.batch.count").inc()
        metrics.counter("perf.kernel.batch.queries.count").inc(len(vectors))
        with tracing.span("kernel.query_many", queries=len(vectors),
                          method=method, processes=processes or 1):
            if processes is not None and processes > 1 and len(vectors) > 1:
                from repro.kernels import batch as _batch

                try:
                    results = _batch.query_many_parallel(
                        self, vectors, method, processes
                    )
                    metrics.counter("perf.kernel.batch.parallel.count").inc()
                    return results
                except Exception as exc:  # pragma: no cover - platform dependent
                    _log.warning(
                        "kernel.batch.parallel_failed",
                        error=repr(exc), fallback="serial",
                    )
                    metrics.counter("perf.kernel.batch.fallback.count").inc()
            return [self.best(wv, method=method) for wv in vectors]

    # ------------------------------------------------------------------
    # coverage views for the simulation engines
    # ------------------------------------------------------------------
    def coverage_sets(
        self, tuples: Iterable[EdgeTuple]
    ) -> Dict[EdgeTuple, FrozenSet[Vertex]]:
        """Tuple → covered-vertex-set map, memoized on the support.

        The Monte-Carlo engines resolve every sampled tuple through this
        map; memoizing on the (sorted) support means repeated runs over
        the same configuration skip the rebuild entirely.
        """
        key = tuple(sorted(tuples, key=tuple_sort_key))
        if key == self._cover_sets_key:
            metrics.counter("perf.kernel.cover.hits.count").inc()
            return self._cover_sets_val
        val = {t: tuple_vertices(t) for t in key}
        self._cover_sets_key = key
        self._cover_sets_val = val
        metrics.counter("perf.kernel.cover.misses.count").inc()
        return val

    def coverage_matrix(self, tuples: Sequence[EdgeTuple]):
        """0/1 coverage matrix (tuples × vertex slots), memoized.

        Returns ``(matrix, vertex_slot)`` where ``matrix[row, j]`` is
        True iff ``tuples[row]`` covers the vertex at slot ``j`` of
        :attr:`vertices`.  Used by the vectorized simulation fast path;
        numpy is imported lazily so the kernel package itself stays
        stdlib-only.
        """
        key = tuple(tuples)
        if key == self._cover_matrix_key:
            metrics.counter("perf.kernel.cover.hits.count").inc()
            return self._cover_matrix_val, self._vertex_slot
        import numpy as np

        matrix = np.zeros((len(key), self.n), dtype=bool)
        slot = self._vertex_slot
        for row, t in enumerate(key):
            for v in tuple_vertices(t):
                matrix[row, slot[v]] = True
        self._cover_matrix_key = key
        self._cover_matrix_val = matrix
        metrics.counter("perf.kernel.cover.misses.count").inc()
        return matrix, self._vertex_slot

    def __repr__(self) -> str:
        return (
            f"CoverageOracle(n={self.n}, m={self.m}, k={self.k}, "
            f"tuples={self.tuple_count})"
        )


# --------------------------------------------------------------------------
# process-wide shared cache
# --------------------------------------------------------------------------

_SHARED_LOCK = threading.Lock()
_SHARED: "OrderedDict[Tuple[Graph, int], CoverageOracle]" = OrderedDict()
_SHARED_CAPACITY = 64


def shared_oracle(graph: Graph, k: int) -> CoverageOracle:
    """The memoized :class:`CoverageOracle` for ``(graph, k)``.

    Graphs are immutable and hashable, so one oracle serves every solver
    iteration, verification bridge and simulation run touching the same
    instance; the cache is LRU-bounded and thread-safe.  Hit/miss rates
    surface as ``perf.kernel.cache.*`` metrics and the ``kernel.build``
    span marks the (rare) construction.
    """
    key = (graph, k)
    with _SHARED_LOCK:
        oracle = _SHARED.get(key)
        if oracle is not None:
            _SHARED.move_to_end(key)
            metrics.counter("perf.kernel.cache.hits.count").inc()
            return oracle
    metrics.counter("perf.kernel.cache.misses.count").inc()
    with tracing.span("kernel.build", n=graph.n, m=graph.m, k=k):
        oracle = CoverageOracle(graph, k)
    with _SHARED_LOCK:
        existing = _SHARED.get(key)
        if existing is not None:
            return existing
        _SHARED[key] = oracle
        while len(_SHARED) > _SHARED_CAPACITY:
            _SHARED.popitem(last=False)
        metrics.gauge("perf.kernel.cache.size").set(len(_SHARED))
    return oracle


def clear_shared_oracles() -> None:
    """Drop every cached oracle (tests and long-lived services).

    Resets the ``perf.kernel.cache.size`` gauge under the same lock — a
    clear that leaves the gauge at the old size would report phantom
    cached oracles until the next :func:`shared_oracle` miss.
    """
    with _SHARED_LOCK:
        _SHARED.clear()
        metrics.gauge("perf.kernel.cache.size").set(0)
