"""Multiprocessing fan-out for :meth:`CoverageOracle.query_many`.

Workers cannot share the parent's oracle object, so each pool worker
rebuilds one from the pickled ``(edges, vertices, k)`` triple in its
initializer and answers its share of the batch against that private copy.
Rebuilding costs one :class:`~repro.kernels.coverage.CoverageOracle`
construction per worker — negligible against the sweeps this path is meant
for (hundreds of weight vectors over the benchmark zoo).

Everything here is intentionally private: the public entry point is
:meth:`repro.kernels.coverage.CoverageOracle.query_many`, which falls back
to the serial path when pools are unavailable (sandboxes, platforms
without working semaphores).
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.tuples import EdgeTuple
from repro.graphs.core import Vertex

# Per-worker oracle, installed by _init_worker before any query runs.
_WORKER_ORACLE = None


def _init_worker(edges, vertices, k: int) -> None:
    global _WORKER_ORACLE
    from repro.graphs.core import Graph
    from repro.kernels.coverage import CoverageOracle

    graph = Graph(edges, vertices=vertices, allow_isolated=True)
    _WORKER_ORACLE = CoverageOracle(graph, k)


def _worker_query(item: Tuple[Dict, str]) -> Tuple[EdgeTuple, float]:
    weights, method = item
    assert _WORKER_ORACLE is not None
    return _WORKER_ORACLE.best(weights, method=method)


def query_many_parallel(
    oracle,
    vectors: List[Mapping[Vertex, float]],
    method: str,
    processes: int,
) -> List[Tuple[EdgeTuple, float]]:
    """Fan ``vectors`` out over a worker pool; results keep input order."""
    workers = min(processes, len(vectors))
    chunksize = max(1, len(vectors) // (workers * 4))
    initargs = (list(oracle.edges), list(oracle.vertices), oracle.k)
    with multiprocessing.Pool(
        workers, initializer=_init_worker, initargs=initargs
    ) as pool:
        return pool.map(
            _worker_query, [(dict(wv), method) for wv in vectors], chunksize
        )
