"""Weighted-assets extension: hosts with unequal values.

A strategically-zero-sum generalization of the paper's model; see
:mod:`repro.weighted.game` for why all the machinery transfers.
"""

from repro.weighted.game import (
    WeightedTupleGame,
    weighted_double_oracle,
    weighted_lp_equilibrium,
    weighted_minimax,
)

__all__ = [
    "WeightedTupleGame",
    "weighted_double_oracle",
    "weighted_lp_equilibrium",
    "weighted_minimax",
]
