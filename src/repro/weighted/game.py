"""The weighted Tuple model: hosts with unequal values.

The paper treats all hosts alike: an attacker scores 1 for escaping
anywhere.  Real networks have crown jewels.  This extension attaches a
positive weight ``w(v)`` to every vertex: an attacker on ``v`` earns
``w(v)`` if it escapes and 0 if caught, and the defender earns the total
weight of the attackers it catches.

The game stays *strategically* zero-sum: the attacker's payoff
``w(v)·(1 − Hit(v))`` differs from the negated defender payoff
``−w(v)·Hit(v)`` only by ``w(v)``, a constant in the defender's action —
so best responses, and hence Nash equilibria, coincide with those of the
zero-sum game whose defender payoff matrix is ``D[t, v] = w(v)·[v ∈ V(t)]``
(see DESIGN.md §6).  That gives the weighted model the same machinery:

* **pure NE** exist iff an edge cover of size ``k`` exists — Theorem 3.1's
  proof never uses the weights (an all-covering defender caps every
  attacker at its maximum-possible profit of 0);
* **mixed NE** come from the exact LP over the weighted matrix;
* the defender's best response is weighted k-edge coverage, which
  :mod:`repro.solvers.best_response` already solves.

What genuinely changes is the *structure*: uniform k-matching profiles
stop being equilibria (the attacker drifts to heavy vertices), and the
equilibrium hit probability on vertex ``v`` becomes ``1 − value/w(v)``
wherever the attacker is willing to stand — heavier hosts get scanned
proportionally harder.  Experiment E12 measures exactly that.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Mapping, Tuple

import numpy as np
from scipy.optimize import linprog

import repro.cache as result_cache
from repro.core.configuration import MixedConfiguration, PureConfiguration
from repro.core.game import GameError, TupleGame
from repro.core.profits import all_hit_probabilities, all_vertex_masses
from repro.core.serialize import configuration_from_json, configuration_to_json
from repro.core.tuples import all_tuples, tuple_vertices
from repro.graphs.core import Graph, Vertex, tuple_sort_key, vertex_sort_key
from repro.obs import ledger as obs_ledger
from repro.solvers.best_response import best_tuple
from repro.solvers.lp import LPSolution, _prune_and_normalize

__all__ = [
    "WeightedTupleGame",
    "weighted_minimax",
    "weighted_lp_equilibrium",
    "weighted_double_oracle",
    "weighted_lp_result_to_json",
    "weighted_lp_result_from_json",
    "weighted_do_result_to_json",
    "weighted_do_result_from_json",
]

_DEFAULT_TUPLE_LIMIT = 200_000


class WeightedTupleGame:
    """``Π_k(G)`` with vertex weights.

    Parameters
    ----------
    graph, k, nu:
        As in :class:`~repro.core.game.TupleGame`.
    weights:
        Strictly positive value per vertex; every vertex must be covered.
    """

    def __init__(
        self, graph: Graph, k: int, weights: Mapping[Vertex, float], nu: int = 1
    ) -> None:
        self.base = TupleGame(graph, k, nu)
        w: Dict[Vertex, float] = {}
        for v in graph.vertices():
            if v not in weights:
                raise GameError(f"vertex {v!r} has no weight")
            value = float(weights[v])
            if not (value > 0.0 and math.isfinite(value)):
                raise GameError(
                    f"vertex weights must be positive and finite; "
                    f"{v!r} has {value!r}"
                )
            w[v] = value
        extra = set(weights) - graph.vertices()
        if extra:
            raise GameError(f"weights given for non-vertices: {sorted(extra, key=repr)!r}")
        self.weights = w

    @property
    def graph(self) -> Graph:
        return self.base.graph

    @property
    def k(self) -> int:
        return self.base.k

    @property
    def nu(self) -> int:
        return self.base.nu

    def total_weight(self) -> float:
        return sum(self.weights.values())

    # ------------------------------------------------------------------
    # Profits
    # ------------------------------------------------------------------
    def pure_profit_attacker(self, config: PureConfiguration, i: int) -> float:
        """``w(s_i)`` if attacker ``i`` escapes, else 0."""
        v = config.vertex_choices[i]
        return 0.0 if v in config.covered_vertices() else self.weights[v]

    def pure_profit_defender(self, config: PureConfiguration) -> float:
        """Total weight of the caught attackers."""
        covered = config.covered_vertices()
        return sum(
            self.weights[v] for v in config.vertex_choices if v in covered
        )

    def expected_profit_attacker(self, config: MixedConfiguration, i: int) -> float:
        hits = all_hit_probabilities(config)
        return sum(
            p * self.weights[v] * (1.0 - hits[v])
            for v, p in config.vp_distribution(i).items()
        )

    def expected_profit_defender(self, config: MixedConfiguration) -> float:
        hits = all_hit_probabilities(config)
        masses = all_vertex_masses(config)
        return sum(
            masses[v] * self.weights[v] * hits[v] for v in self.graph.vertices()
        )

    # ------------------------------------------------------------------
    # Equilibrium checks
    # ------------------------------------------------------------------
    def verify_best_responses(
        self, config: MixedConfiguration, tol: float = 1e-9
    ) -> Tuple[bool, Dict[str, float]]:
        """First-principles NE check for the weighted game."""
        hits = all_hit_probabilities(config)
        best_attack = max(
            self.weights[v] * (1.0 - hits[v]) for v in self.graph.vertices()
        )
        gaps: Dict[str, float] = {}
        ok = True
        for i in range(self.nu):
            regret = best_attack - self.expected_profit_attacker(config, i)
            gaps[f"vp_{i}"] = regret
            if regret > tol:
                ok = False
        masses = all_vertex_masses(config)
        weighted_mass = {v: masses[v] * self.weights[v] for v in masses}
        _, best_defense = best_tuple(self.graph, weighted_mass, self.k)
        regret = best_defense - self.expected_profit_defender(config)
        gaps["tp"] = regret
        if regret > tol * max(1.0, self.total_weight()):
            ok = False
        return ok, gaps

    def __repr__(self) -> str:
        return (
            f"WeightedTupleGame(n={self.graph.n}, m={self.graph.m}, "
            f"k={self.k}, nu={self.nu})"
        )


def weighted_minimax(
    game: WeightedTupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> LPSolution:
    """Exact equilibrium of the weighted duel by LP.

    Defender LP over the matrix ``D[t, v] = w(v)·[v ∈ V(t)]``: the
    *attacker-facing* guarantee is on escape profit, so the defender
    constraint is "every vertex's escape profit ``w(v)(1 − hit(v))`` is at
    most ``z``", minimized; the attacker LP is its dual.  The reported
    ``value`` is the equilibrium *escape* profit per attacker; the
    defender's per-attacker catch value follows from the attacker mixture.
    """
    base = game.base
    if base.tuple_strategy_count() > tuple_limit:
        raise GameError(
            f"C(m={base.m}, k={base.k}) exceeds the LP limit {tuple_limit}"
        )
    vertices = game.graph.sorted_vertices()
    index = {v: i for i, v in enumerate(vertices)}
    tuples = list(all_tuples(game.graph, game.k))
    n, t_count = len(vertices), len(tuples)
    w = np.array([game.weights[v] for v in vertices])

    # Escape matrix E[t][v] = w(v) * (1 - [v in V(t)]).
    covered = np.zeros((t_count, n))
    for row, t in enumerate(tuples):
        for v in tuple_vertices(t):
            covered[row, index[v]] = 1.0
    escape = (1.0 - covered) * w[None, :]

    # Defender: minimize z s.t. (p^T E)_v <= z for all v; sum p = 1.
    c = np.zeros(t_count + 1)
    c[-1] = 1.0
    a_ub = np.hstack([escape.T, -np.ones((n, 1))])
    b_ub = np.zeros(n)
    a_eq = np.zeros((1, t_count + 1))
    a_eq[0, :t_count] = 1.0
    res_d = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=np.array([1.0]),
        bounds=[(0.0, None)] * t_count + [(None, None)], method="highs",
    )
    if not res_d.success:
        raise GameError(f"weighted defender LP failed: {res_d.message}")

    # Attacker: maximize z' s.t. (E q)_t >= z' for all t; sum q = 1.
    c2 = np.zeros(n + 1)
    c2[-1] = -1.0
    a_ub2 = np.hstack([-escape, np.ones((t_count, 1))])
    b_ub2 = np.zeros(t_count)
    a_eq2 = np.zeros((1, n + 1))
    a_eq2[0, :n] = 1.0
    res_a = linprog(
        c2, A_ub=a_ub2, b_ub=b_ub2, A_eq=a_eq2, b_eq=np.array([1.0]),
        bounds=[(0.0, None)] * n + [(None, None)], method="highs",
    )
    if not res_a.success:
        raise GameError(f"weighted attacker LP failed: {res_a.message}")

    value_d = res_d.fun
    value_a = -res_a.fun
    if abs(value_d - value_a) > 1e-7:
        raise GameError(
            f"weighted LP duality gap: {value_d!r} vs {value_a!r}"
        )
    defender = _prune_and_normalize(res_d.x[:t_count], tuples)
    attacker = _prune_and_normalize(res_a.x[:n], vertices)
    return LPSolution(float(value_d), defender, attacker)


_LP_RESULT_FORMAT = "repro.weighted.lp-result.v1"
_DO_RESULT_FORMAT = "repro.weighted.double-oracle-result.v1"


def _lp_solution_payload(solution: LPSolution) -> Dict:
    return {
        "value": solution.value,
        "defender": [
            [[list(e) for e in t], p]
            for t, p in sorted(
                solution.defender.items(),
                key=lambda item: tuple_sort_key(item[0]),
            )
        ],
        "attacker": [
            [v, p]
            for v, p in sorted(
                solution.attacker.items(),
                key=lambda item: vertex_sort_key(item[0]),
            )
        ],
    }


def _lp_solution_from_payload(payload: Dict) -> LPSolution:
    return LPSolution(
        float(payload["value"]),
        {
            tuple(tuple(e) for e in t): float(p)
            for t, p in payload["defender"]
        },
        {v: float(p) for v, p in payload["attacker"]},
    )


def weighted_lp_result_to_json(
    config: MixedConfiguration, solution: LPSolution
) -> str:
    """Canonical JSON dump of a :func:`weighted_lp_equilibrium` outcome."""
    payload = {
        "format": _LP_RESULT_FORMAT,
        "configuration": json.loads(configuration_to_json(config)),
        "solution": _lp_solution_payload(solution),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def weighted_lp_result_from_json(
    text: str,
) -> Tuple[MixedConfiguration, LPSolution]:
    """Parse a :func:`weighted_lp_result_to_json` document (re-validated)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GameError(f"invalid weighted-LP document: {exc}") from exc
    if not isinstance(payload, dict) \
            or payload.get("format") != _LP_RESULT_FORMAT:
        raise GameError(
            f"unrecognized weighted-LP format (expected {_LP_RESULT_FORMAT!r})"
        )
    try:
        config = configuration_from_json(
            json.dumps(payload["configuration"])
        )
        solution = _lp_solution_from_payload(payload["solution"])
    except (KeyError, TypeError, ValueError) as exc:
        raise GameError(f"malformed weighted-LP payload: {exc}") from exc
    return config, solution


def weighted_do_result_to_json(
    config: MixedConfiguration, value: float
) -> str:
    """Canonical JSON dump of a :func:`weighted_double_oracle` outcome."""
    payload = {
        "format": _DO_RESULT_FORMAT,
        "configuration": json.loads(configuration_to_json(config)),
        "value": float(value),
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def weighted_do_result_from_json(
    text: str,
) -> Tuple[MixedConfiguration, float]:
    """Parse a :func:`weighted_do_result_to_json` document (re-validated)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GameError(
            f"invalid weighted double-oracle document: {exc}"
        ) from exc
    if not isinstance(payload, dict) \
            or payload.get("format") != _DO_RESULT_FORMAT:
        raise GameError(
            f"unrecognized weighted double-oracle format "
            f"(expected {_DO_RESULT_FORMAT!r})"
        )
    try:
        config = configuration_from_json(
            json.dumps(payload["configuration"])
        )
        value = float(payload["value"])
    except (KeyError, TypeError, ValueError) as exc:
        raise GameError(
            f"malformed weighted double-oracle payload: {exc}"
        ) from exc
    return config, value


def weighted_lp_equilibrium(
    game: WeightedTupleGame, tuple_limit: int = _DEFAULT_TUPLE_LIMIT
) -> Tuple[MixedConfiguration, LPSolution]:
    """A mixed NE of the weighted game from the LP optima.

    ``solution.value`` is the per-attacker *escape* profit at equilibrium.
    Cache-aware: with :mod:`repro.cache` enabled, a repeated solve of the
    same weighted game (same weights — the fingerprint carries them) and
    ``tuple_limit`` replays the stored result, and the ledger record is
    stamped with ``cache_hit``.
    """
    probe = result_cache.lookup(
        game, "weighted.lp_equilibrium", {"tuple_limit": tuple_limit}
    )
    with obs_ledger.run("weighted.lp_equilibrium", game=game,
                        tuple_limit=tuple_limit, cache_hit=probe.hit):
        if probe.hit:
            cached = probe.replay(weighted_lp_result_from_json)
            if cached is not None:
                return cached
        solution = weighted_minimax(game, tuple_limit=tuple_limit)
        config = MixedConfiguration(
            game.base, [solution.attacker] * game.nu, solution.defender
        )
        probe.store(weighted_lp_result_to_json(config, solution))
    return config, solution


def weighted_double_oracle(
    game: WeightedTupleGame,
    tolerance: float = 1e-9,
    max_iterations: int = 300,
) -> Tuple[MixedConfiguration, float]:
    """Weighted equilibrium by lazy strategy generation.

    The weighted analogue of :func:`repro.solvers.double_oracle.double_oracle`
    for instances whose ``C(m, k)`` defeats :func:`weighted_minimax`:
    restricted weighted LPs over growing pools, with the defender oracle
    maximizing *weighted* coverage of the attacker mixture and the
    attacker oracle maximizing the escape profit ``w(v)(1 − hit(v))``.

    Returns ``(equilibrium configuration, escape value per attacker)``.
    Cache-aware like :func:`weighted_lp_equilibrium`.
    """
    probe = result_cache.lookup(
        game, "weighted.double_oracle",
        {"tolerance": tolerance, "max_iterations": max_iterations},
    )
    with obs_ledger.run("weighted.double_oracle", game=game,
                        tolerance=tolerance, max_iterations=max_iterations,
                        cache_hit=probe.hit):
        if probe.hit:
            cached = probe.replay(weighted_do_result_from_json)
            if cached is not None:
                return cached
        config, value = _weighted_double_oracle_impl(
            game, tolerance, max_iterations
        )
        probe.store(weighted_do_result_to_json(config, value))
    return config, value


def _weighted_double_oracle_impl(
    game: WeightedTupleGame,
    tolerance: float,
    max_iterations: int,
) -> Tuple[MixedConfiguration, float]:
    import numpy as np
    from scipy.optimize import linprog

    graph = game.graph
    vertices = graph.sorted_vertices()
    uniform_mass = {v: game.weights[v] for v in vertices}
    from repro.solvers.best_response import greedy_tuple

    seed_tuple, _ = greedy_tuple(graph, uniform_mass, game.k)
    defender_pool = [seed_tuple]
    defender_seen = {seed_tuple}
    heaviest = max(vertices, key=lambda v: (game.weights[v], repr(v)))
    attacker_pool = [heaviest]
    attacker_seen = {heaviest}

    def restricted_solution():
        n, t_count = len(attacker_pool), len(defender_pool)
        w = np.array([game.weights[v] for v in attacker_pool])
        covered = np.zeros((t_count, n))
        index = {v: i for i, v in enumerate(attacker_pool)}
        for row, t in enumerate(defender_pool):
            for v in tuple_vertices(t):
                col = index.get(v)
                if col is not None:
                    covered[row, col] = 1.0
        escape = (1.0 - covered) * w[None, :]
        c = np.zeros(t_count + 1)
        c[-1] = 1.0
        a_ub = np.hstack([escape.T, -np.ones((n, 1))])
        a_eq = np.zeros((1, t_count + 1))
        a_eq[0, :t_count] = 1.0
        res_d = linprog(
            c, A_ub=a_ub, b_ub=np.zeros(n), A_eq=a_eq, b_eq=np.array([1.0]),
            bounds=[(0.0, None)] * t_count + [(None, None)], method="highs",
        )
        c2 = np.zeros(n + 1)
        c2[-1] = -1.0
        a_ub2 = np.hstack([-escape, np.ones((t_count, 1))])
        a_eq2 = np.zeros((1, n + 1))
        a_eq2[0, :n] = 1.0
        res_a = linprog(
            c2, A_ub=a_ub2, b_ub=np.zeros(t_count), A_eq=a_eq2,
            b_eq=np.array([1.0]),
            bounds=[(0.0, None)] * n + [(None, None)], method="highs",
        )
        if not (res_d.success and res_a.success):
            raise GameError("restricted weighted LP failed")
        from repro.solvers.lp import _prune_and_normalize

        defender = _prune_and_normalize(res_d.x[:t_count], defender_pool)
        attacker = _prune_and_normalize(res_a.x[:n], attacker_pool)
        return float(res_d.fun), defender, attacker

    for _ in range(max_iterations):
        value, defender, attacker = restricted_solution()
        # Defender oracle: minimize total escape == maximize weighted
        # coverage of the attacker mixture.
        weighted_mass = {
            v: attacker.get(v, 0.0) * game.weights[v] for v in vertices
        }
        best_def, _ = best_tuple(graph, weighted_mass, game.k)
        # Attacker oracle: the vertex with the highest escape profit.
        hit: Dict = {v: 0.0 for v in vertices}
        for t, p in defender.items():
            for v in tuple_vertices(t):
                hit[v] += p
        best_att = max(
            vertices, key=lambda v: (game.weights[v] * (1.0 - hit[v]), repr(v))
        )
        att_payoff = game.weights[best_att] * (1.0 - hit[best_att])
        total_escape = sum(
            attacker.get(v, 0.0) * game.weights[v] for v in vertices
        )
        covered_value = sum(
            attacker.get(v, 0.0) * game.weights[v]
            for v in tuple_vertices(best_def)
        )
        def_escape_if_best = total_escape - covered_value

        improved = False
        if def_escape_if_best < value - tolerance and best_def not in defender_seen:
            defender_pool.append(best_def)
            defender_seen.add(best_def)
            improved = True
        if att_payoff > value + tolerance and best_att not in attacker_seen:
            attacker_pool.append(best_att)
            attacker_seen.add(best_att)
            improved = True
        if not improved:
            config = MixedConfiguration(
                game.base, [attacker] * game.nu, defender
            )
            return config, value

    raise GameError(
        f"weighted double oracle did not converge within {max_iterations} "
        "iterations"
    )
