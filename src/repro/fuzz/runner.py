"""The fuzz driver: batches, corpus replay, shrinking, reporting.

Two entry points back both the CLI subcommand and ``python -m repro.fuzz``:

* :func:`run_fuzz` — generate ``count`` fresh games from a master seed and
  run the invariant catalog over each.  Failures are shrunk to minimal
  counterexamples and (optionally) persisted into the corpus.
* :func:`replay_corpus` — re-run the catalog over every persisted
  counterexample; the regression half of the ``fuzz-smoke`` CI gate.

Everything is observable: ``fuzz.games.count`` / ``fuzz.violations.count``
counters, a ``fuzz.run.seconds`` timer and per-batch ``fuzz.run`` spans
feed the same telemetry pipeline as the solvers (see OBS001).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz.corpus import iter_corpus, save_case
from repro.fuzz.generators import GameSpec, random_spec
from repro.fuzz.invariants import (
    DEFAULT_TOLERANCE,
    Violation,
    check_game,
)
from repro.fuzz.shrink import shrink_spec
from repro.obs import events as obs_events
from repro.obs import get_logger, metrics, tracing
from repro.obs import ledger as obs_ledger

# The argparse glue (add_fuzz_arguments / run_fuzz_from_args) is exported
# at the package level, not here: runner's own ``__all__`` names the
# instrumented entry points that OBS001 audits.
__all__ = ["CaseResult", "FuzzReport", "run_fuzz", "replay_corpus"]

_log = get_logger("repro.fuzz.runner")

#: Derivation stride between per-case seeds (a prime far above any batch
#: size, so case streams never overlap for distinct master seeds).
_SEED_STRIDE = 1_000_003


class CaseResult:
    """Outcome of one fuzzed game."""

    __slots__ = ("spec", "violations", "shrunk", "corpus_path")

    def __init__(
        self,
        spec: GameSpec,
        violations: List[Violation],
        shrunk: Optional[GameSpec] = None,
        corpus_path: Optional[Path] = None,
    ) -> None:
        self.spec = spec
        self.violations = violations
        self.shrunk = shrunk
        self.corpus_path = corpus_path

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"CaseResult({self.spec.describe()}: {status})"


class FuzzReport:
    """Aggregate outcome of a batch (fresh or replayed)."""

    __slots__ = ("mode", "results")

    def __init__(self, mode: str, results: List[CaseResult]) -> None:
        self.mode = mode
        self.results = results

    @property
    def games(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def families(self) -> Dict[str, int]:
        """Coverage histogram: base family name → games fuzzed."""
        seen: Dict[str, int] = {}
        for r in self.results:
            base = r.spec.family.split(":", 1)[0]
            seen[base] = seen.get(base, 0) + 1
        return dict(sorted(seen.items()))

    def summary(self) -> str:
        lines = [
            f"fuzz {self.mode}: {self.games} games, "
            f"{len(self.failures)} failing",
        ]
        fams = self.families()
        if fams:
            lines.append(
                "families: "
                + ", ".join(f"{name} x{count}" for name, count in fams.items())
            )
        for result in self.failures:
            lines.append(f"FAIL {result.spec.describe()}")
            for v in result.violations:
                tag = f" [{v.theorem}]" if v.theorem else ""
                lines.append(f"  - {v.check}{tag}: {v.message}")
            if result.shrunk is not None and result.shrunk != result.spec:
                lines.append(f"  shrunk to: {result.shrunk.describe()}")
            if result.corpus_path is not None:
                lines.append(f"  saved: {result.corpus_path}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"FuzzReport(mode={self.mode!r}, games={self.games}, ok={self.ok})"


def _failing_checks(violations: Sequence[Violation]) -> List[str]:
    seen: List[str] = []
    for v in violations:
        if v.check not in seen:
            seen.append(v.check)
    return seen


def _process_failure(
    spec: GameSpec,
    violations: List[Violation],
    corpus_dir: Optional[Path],
    tolerance: float,
) -> CaseResult:
    """Shrink a failing case against its own failing checks, persist it."""
    checks = _failing_checks(violations)

    def still_fails(candidate: GameSpec) -> bool:
        return bool(check_game(candidate.to_game(), tolerance, checks=checks))

    shrunk = shrink_spec(spec, still_fails)
    shrunk_violations = check_game(shrunk.to_game(), tolerance, checks=checks)
    path = None
    if corpus_dir is not None:
        path = save_case(corpus_dir, shrunk, shrunk_violations or violations)
    return CaseResult(spec, violations, shrunk=shrunk, corpus_path=path)


def run_fuzz(
    count: int = 50,
    seed: int = 0,
    corpus_dir: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    checks: Optional[Sequence[str]] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Fuzz ``count`` fresh games derived from ``seed``.

    Each case gets its own ``random.Random`` seeded by an affine function
    of the master seed, so batches are reproducible case-by-case and
    extending ``count`` never re-shuffles earlier cases.  Failing cases
    are shrunk (when ``shrink``) and written into ``corpus_dir`` (when
    given) for permanent regression coverage.
    """
    corpus = Path(corpus_dir) if corpus_dir else None
    results: List[CaseResult] = []
    batch_fingerprint = {"kind": "fuzz-batch", "count": count, "seed": seed}
    with obs_ledger.run("fuzz.run", fingerprint=batch_fingerprint,
                        count=count, seed=seed, shrink=shrink), \
            tracing.span("fuzz.run", count=count, seed=seed), \
            metrics.timer("fuzz.run.seconds"):
        for index in range(count):
            case_seed = seed * _SEED_STRIDE + index
            rng = random.Random(case_seed)
            spec = random_spec(rng, seed=case_seed)
            metrics.counter("fuzz.games.count").inc()
            violations = check_game(spec.to_game(), tolerance, checks=checks)
            obs_events.publish(
                "fuzz.case", mode="batch", index=index,
                family=spec.family, ok=not violations,
                violations=len(violations),
            )
            if violations:
                metrics.counter("fuzz.violations.count").inc(len(violations))
                _log.warning(
                    "fuzz.case.failed", case=spec.describe(),
                    checks=_failing_checks(violations),
                )
                if shrink:
                    results.append(
                        _process_failure(spec, violations, corpus, tolerance)
                    )
                    continue
            results.append(CaseResult(spec, violations))
    report = FuzzReport("batch", results)
    _log.info(
        "fuzz.run.done", games=report.games, failures=len(report.failures),
    )
    return report


def replay_corpus(
    corpus_dir: str,
    tolerance: float = DEFAULT_TOLERANCE,
    checks: Optional[Sequence[str]] = None,
) -> FuzzReport:
    """Re-run the invariant catalog over every persisted counterexample.

    Replay never shrinks or writes — it is the pure regression half of the
    smoke gate.  An absent or empty corpus replays vacuously green.
    """
    results: List[CaseResult] = []
    replay_fingerprint = {"kind": "fuzz-replay", "corpus": str(corpus_dir)}
    with obs_ledger.run("fuzz.replay", fingerprint=replay_fingerprint,
                        corpus=str(corpus_dir)), \
            tracing.span("fuzz.replay", corpus=str(corpus_dir)), \
            metrics.timer("fuzz.replay.seconds"):
        for path, spec in iter_corpus(corpus_dir):
            metrics.counter("fuzz.replayed.count").inc()
            violations = check_game(spec.to_game(), tolerance, checks=checks)
            obs_events.publish(
                "fuzz.case", mode="replay", family=spec.family,
                ok=not violations, violations=len(violations),
            )
            if violations:
                metrics.counter("fuzz.violations.count").inc(len(violations))
            results.append(CaseResult(spec, violations, corpus_path=path))
    report = FuzzReport("replay", results)
    _log.info(
        "fuzz.replay.done", games=report.games,
        failures=len(report.failures),
    )
    return report


# --------------------------------------------------------------------------
# argparse glue (shared by ``repro-defender fuzz`` and ``python -m repro.fuzz``)


def add_fuzz_arguments(parser) -> None:
    """Attach the fuzz flags to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "--count", type=int, default=50,
        help="fresh games to generate (default: 50)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed; every batch is a pure function of it",
    )
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="counterexample corpus directory (shrunk failures are "
             "saved here; use with --replay to re-check old cases)",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="replay the corpus before (or instead of) fresh fuzzing",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report raw failing games without delta-debugging them",
    )
    parser.add_argument(
        "--invariant", action="append", default=None, metavar="NAME",
        help="restrict to one invariant (repeatable); default: all",
    )
    parser.add_argument(
        "--list-invariants", action="store_true",
        help="print the invariant catalog and exit",
    )


def run_fuzz_from_args(args, emit=print) -> int:
    """Execute a parsed fuzz invocation; returns a process exit code
    (0 = all invariants held, 1 = divergence found, 2 = usage error)."""
    if args.list_invariants:
        from repro.fuzz.invariants import INVARIANTS

        for name, check in INVARIANTS.items():
            doc = (check.__doc__ or "").strip().splitlines()[0]
            emit(f"{name}: {doc}")
        return 0
    ok = True
    if args.replay:
        if not args.corpus:
            emit("error: --replay requires --corpus")
            return 2
        report = replay_corpus(args.corpus, checks=args.invariant)
        emit(report.summary())
        ok = ok and report.ok
    if args.count > 0:
        report = run_fuzz(
            count=args.count,
            seed=args.seed,
            corpus_dir=args.corpus,
            checks=args.invariant,
            shrink=not args.no_shrink,
        )
        emit(report.summary())
        ok = ok and report.ok
    return 0 if ok else 1
