"""The differential-invariant catalog: what every solver path must agree on.

Each check takes one :class:`~repro.core.game.TupleGame` and returns the
list of :class:`Violation` records it found (empty = clean).  The catalog
is keyed by name so the runner, the corpus replayer and the docs all refer
to the same set; every check carries the paper result it enforces:

============================  ==========  =======================================
check                         theorem     cross-checked paths
============================  ==========  =======================================
``pure-threshold``            T3.1, C3.3  Gallai/blossom cover vs pure-NE search
``value-agreement``           —           LP minimax, double oracle (exact and
                                          greedy), fictitious-play sandwich
``solve-cascade``             T3.4, T4.5  structural cascade vs LP value; the
                                          k-matching gain law ``k·ν/ρ(G)``
``serialize-roundtrip``       —           JSON dump → load → re-verify → re-dump
``weighted-serialize-roundtrip``  —       weighted dump → load → dump byte
                                          fixpoint; weights separate sha256
                                          fingerprints
``graph-io-roundtrip``        —           graph JSON + edge-list codecs
``kernel-reference``          —           coverage kernel vs brute-force argmax
``simulation-agreement``      D2.1        vectorized Monte Carlo vs exact profit
``ranges-consistency``        —           polytope probes vs LP value (gated)
============================  ==========  =======================================

A check that *raises* is itself a finding — the harness converts the
exception into a ``crash`` violation rather than aborting the batch, so
one broken game never hides the rest.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.characterization import is_mixed_nash
from repro.core.game import TupleGame
from repro.core.pure import pure_nash_exists
from repro.core.serialize import (
    configuration_from_json,
    configuration_to_json,
    game_from_json,
    game_to_json,
)
from repro.core.tuples import all_tuples, tuple_vertices
from repro.equilibria.solve import NoEquilibriumFoundError, solve_game
from repro.graphs.core import Graph, tuple_sort_key
from repro.graphs.io import (
    format_edge_list,
    graph_from_json,
    graph_to_json,
    parse_edge_list,
)
from repro.kernels.coverage import shared_oracle
from repro.matching.covers import minimum_edge_cover_size
from repro.simulation.fast import simulate_fast
from repro.solvers.double_oracle import double_oracle
from repro.solvers.fictitious_play import fictitious_play
from repro.solvers.lp import solve_minimax
from repro.solvers.ranges import attacker_vertex_ranges
from repro.weighted.game import WeightedTupleGame

__all__ = ["Violation", "INVARIANTS", "check_game", "DEFAULT_TOLERANCE"]

DEFAULT_TOLERANCE = 1e-6
"""Value-agreement tolerance across solver paths (each path is itself
accurate to ~1e-9; the slack absorbs accumulation across pipelines)."""

#: ``ranges-consistency`` probes 2 LPs per coordinate — only worth the
#: cycles on small instances.
_RANGES_TUPLE_LIMIT = 150
_RANGES_MAX_N = 8

_SIMULATION_TRIALS = 4_000
_FP_ROUNDS = 120


class Violation:
    """One observed divergence between solver paths (or from a theorem)."""

    __slots__ = ("check", "theorem", "message")

    def __init__(self, check: str, message: str, theorem: str = "") -> None:
        self.check = check
        self.theorem = theorem
        self.message = message

    def to_payload(self) -> Dict[str, str]:
        return {
            "check": self.check,
            "theorem": self.theorem,
            "message": self.message,
        }

    def __repr__(self) -> str:
        tag = f" [{self.theorem}]" if self.theorem else ""
        return f"Violation({self.check}{tag}: {self.message})"


def _close(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol


# --------------------------------------------------------------------------
# individual checks


def check_pure_threshold(game: TupleGame, tol: float) -> List[Violation]:
    """Pure NE exists iff ``k ≥ ρ(G)`` (Theorem 3.1 / Corollary 3.3)."""
    rho = minimum_edge_cover_size(game.graph)
    exists = pure_nash_exists(game)
    out: List[Violation] = []
    if exists != (game.k >= rho):
        out.append(Violation(
            "pure-threshold",
            f"pure_nash_exists={exists} but k={game.k}, rho={rho}",
            theorem="Theorem 3.1",
        ))
    if game.graph.n >= 2 * game.k + 1 and exists:
        out.append(Violation(
            "pure-threshold",
            f"pure NE reported with n={game.graph.n} >= 2k+1={2 * game.k + 1}",
            theorem="Corollary 3.3",
        ))
    return out


def check_value_agreement(game: TupleGame, tol: float) -> List[Violation]:
    """All four solver routes must agree on the per-attacker value."""
    out: List[Violation] = []
    value = solve_minimax(game).value

    do_exact = double_oracle(game, method="auto")
    if not do_exact.exact:
        out.append(Violation(
            "value-agreement",
            f"exact double oracle failed its own certificate "
            f"(gap={do_exact.certified_gap:.3e})",
        ))
    if not _close(do_exact.value, value, tol):
        out.append(Violation(
            "value-agreement",
            f"double_oracle(auto)={do_exact.value!r} vs LP={value!r}",
        ))

    do_greedy = double_oracle(game, method="greedy")
    if do_greedy.exact and not _close(do_greedy.value, value, tol):
        out.append(Violation(
            "value-agreement",
            f"double_oracle(greedy)={do_greedy.value!r} certified exact "
            f"but LP={value!r}",
        ))

    fp = fictitious_play(game, rounds=_FP_ROUNDS)
    if not (fp.lower_bound - tol <= value <= fp.upper_bound + tol):
        out.append(Violation(
            "value-agreement",
            f"LP value {value!r} escapes the fictitious-play sandwich "
            f"[{fp.lower_bound!r}, {fp.upper_bound!r}]",
        ))
    return out


def check_solve_cascade(game: TupleGame, tol: float) -> List[Violation]:
    """The structural cascade must emit verified equilibria with the
    theorem-mandated gain (Theorem 3.4 characterization, Theorem 4.5 law).
    """
    try:
        result = solve_game(game)
    except NoEquilibriumFoundError:
        # An honest "out of reach" is allowed (non-bipartite heuristics);
        # the LP paths still cover the instance via value-agreement.
        return []
    out: List[Violation] = []
    if not is_mixed_nash(game, result.mixed):
        out.append(Violation(
            "solve-cascade",
            f"solve_game kind={result.kind!r} returned a non-equilibrium",
            theorem="Theorem 3.4",
        ))
    value = solve_minimax(game).value
    if not _close(result.defender_gain, game.nu * value, tol):
        out.append(Violation(
            "solve-cascade",
            f"defender_gain={result.defender_gain!r} != nu*value="
            f"{game.nu * value!r} (kind={result.kind!r})",
        ))
    if result.kind == "k-matching":
        rho = minimum_edge_cover_size(game.graph)
        expected = game.k * game.nu / rho
        if not _close(result.defender_gain, expected, tol):
            out.append(Violation(
                "solve-cascade",
                f"k-matching gain {result.defender_gain!r} != "
                f"k*nu/rho = {expected!r}",
                theorem="Theorem 4.5",
            ))
    return out


def check_serialize_roundtrip(game: TupleGame, tol: float) -> List[Violation]:
    """dump → load → the equilibrium still verifies → dump is canonical."""
    try:
        config = solve_game(game).mixed
    except NoEquilibriumFoundError:
        return []
    text = configuration_to_json(config)
    restored = configuration_from_json(text)
    out: List[Violation] = []
    if restored.game != game:
        out.append(Violation(
            "serialize-roundtrip", "game did not survive the round trip",
        ))
        return out
    if not is_mixed_nash(restored.game, restored):
        out.append(Violation(
            "serialize-roundtrip",
            "restored configuration is no longer a Nash equilibrium",
        ))
    if configuration_to_json(restored) != text:
        out.append(Violation(
            "serialize-roundtrip",
            "serialization is not canonical (re-dump differs)",
        ))
    return out


def _game_sha256(text: str) -> str:
    """The ledger/cache content fingerprint of a ``game_to_json`` text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def check_weighted_serialize_roundtrip(
    game: TupleGame, tol: float
) -> List[Violation]:
    """Weighted identity: dump → load → dump is a byte fixpoint and the
    weight vector is part of the content address.

    Lifts the fuzzed game to a :class:`WeightedTupleGame` with weights
    derived deterministically from the sorted vertex order, then requires

    * the round trip to restore a *weighted* game with equal weights
      (the historical bug silently downgraded to a plain game);
    * the re-dump to be byte-identical (canonical serialization);
    * bumping a single weight to change the sha256 fingerprint
      (injectivity — distinct weights must never share a cache entry);
    * the plain game's document to stay free of weight keys (the
      pre-weighted byte format is a compatibility contract).
    """
    vertices = game.graph.sorted_vertices()
    weights = {v: 1.0 + (i % 5) * 0.25 for i, v in enumerate(vertices)}
    weighted = WeightedTupleGame(game.graph, game.k, weights, nu=game.nu)
    text = game_to_json(weighted)
    restored = game_from_json(text)
    out: List[Violation] = []
    if not isinstance(restored, WeightedTupleGame):
        out.append(Violation(
            "weighted-serialize-roundtrip",
            f"weighted game round-tripped as {type(restored).__name__} — "
            "weights silently dropped",
        ))
        return out
    if restored.weights != weighted.weights:
        out.append(Violation(
            "weighted-serialize-roundtrip",
            "weight vector did not survive the round trip",
        ))
    if game_to_json(restored) != text:
        out.append(Violation(
            "weighted-serialize-roundtrip",
            "weighted serialization is not canonical (re-dump differs)",
        ))
    bumped = dict(weights)
    bumped[vertices[0]] = weights[vertices[0]] + 0.5
    other = WeightedTupleGame(game.graph, game.k, bumped, nu=game.nu)
    if _game_sha256(text) == _game_sha256(game_to_json(other)):
        out.append(Violation(
            "weighted-serialize-roundtrip",
            "games differing only in one weight share a sha256 "
            "fingerprint — the content address is weight-blind",
        ))
    plain_payload = json.loads(game_to_json(game))
    if "weights" in plain_payload or "model" in plain_payload:
        out.append(Violation(
            "weighted-serialize-roundtrip",
            "plain game document carries weighted keys — the pre-weighted "
            "byte format must stay stable",
        ))
    return out


def check_graph_io_roundtrip(game: TupleGame, tol: float) -> List[Violation]:
    """The graph codecs must be lossless on every generated label shape.

    JSON always round-trips; the edge-list format carries no type
    information, so it is only required to round-trip when all labels
    share one type (pure-int files re-coerce, pure-str files stay put).
    """
    graph = game.graph
    out: List[Violation] = []
    if graph_from_json(graph_to_json(graph)) != graph:
        out.append(Violation(
            "graph-io-roundtrip", "JSON graph codec is not lossless",
        ))
    label_types = {type(v) for v in graph.vertices()}
    if len(label_types) == 1:
        if parse_edge_list(format_edge_list(graph)) != graph:
            out.append(Violation(
                "graph-io-roundtrip",
                f"edge-list codec is not lossless on "
                f"{label_types.pop().__name__} labels",
            ))
    return out


def _reference_best(game: TupleGame, weights: Dict) -> float:
    """Brute-force coverage argmax — the kernel's independent referee."""
    best = float("-inf")
    for t in sorted(all_tuples(game.graph, game.k), key=tuple_sort_key):
        best = max(best, sum(weights[v] for v in tuple_vertices(t)))
    return best


def check_kernel_reference(game: TupleGame, tol: float) -> List[Violation]:
    """The exact coverage kernel must match a brute-force best response."""
    rng = random.Random(game.graph.n * 7919 + game.graph.m * 31 + game.k)
    vertices = game.graph.sorted_vertices()
    oracle = shared_oracle(game.graph, game.k)
    out: List[Violation] = []
    for trial in range(3):
        weights = {v: rng.uniform(0.0, 1.0) for v in vertices}
        _, kernel_value = oracle.best(weights, method="auto")
        reference = _reference_best(game, weights)
        if not _close(kernel_value, reference, tol):
            out.append(Violation(
                "kernel-reference",
                f"kernel best-response {kernel_value!r} != brute force "
                f"{reference!r} (trial {trial})",
            ))
        _, greedy_value = oracle.greedy(weights)
        if greedy_value > reference + tol:
            out.append(Violation(
                "kernel-reference",
                f"greedy value {greedy_value!r} exceeds the exact optimum "
                f"{reference!r} (trial {trial})",
            ))
    return out


def check_simulation_agreement(game: TupleGame, tol: float) -> List[Violation]:
    """Monte-Carlo profit must bracket the exact expectation (Def. 2.1)."""
    try:
        result = solve_game(game)
    except NoEquilibriumFoundError:
        return []
    sim = simulate_fast(game, result.mixed, trials=_SIMULATION_TRIALS, seed=7)
    stderr = sim.defender_std / max(1, _SIMULATION_TRIALS) ** 0.5
    slack = 6.0 * stderr + tol
    if abs(sim.defender_mean - result.defender_gain) > slack:
        return [Violation(
            "simulation-agreement",
            f"simulated gain {sim.defender_mean!r} is {slack!r}-far from "
            f"exact {result.defender_gain!r} "
            f"({_SIMULATION_TRIALS} trials, 6 sigma)",
            theorem="Definition 2.1",
        )]
    return []


def check_ranges_consistency(game: TupleGame, tol: float) -> List[Violation]:
    """Polytope probes: well-formed intervals at the LP value (gated)."""
    if (
        game.tuple_strategy_count() > _RANGES_TUPLE_LIMIT
        or game.graph.n > _RANGES_MAX_N
    ):
        return []
    ranges = attacker_vertex_ranges(game)
    value = solve_minimax(game).value
    out: List[Violation] = []
    if not _close(ranges.value, value, tol):
        out.append(Violation(
            "ranges-consistency",
            f"probe value {ranges.value!r} != LP value {value!r}",
        ))
    total_low = 0.0
    for v, (low, high) in ranges.ranges.items():
        if not (-tol <= low <= high + tol and high <= 1.0 + tol):
            out.append(Violation(
                "ranges-consistency",
                f"malformed interval [{low!r}, {high!r}] for vertex {v!r}",
            ))
        total_low += low
    if total_low > 1.0 + tol:
        out.append(Violation(
            "ranges-consistency",
            f"per-vertex minima sum to {total_low!r} > 1",
        ))
    return out


# --------------------------------------------------------------------------
# catalog + driver


Check = Callable[[TupleGame, float], List[Violation]]

INVARIANTS: Dict[str, Check] = {
    "pure-threshold": check_pure_threshold,
    "value-agreement": check_value_agreement,
    "solve-cascade": check_solve_cascade,
    "serialize-roundtrip": check_serialize_roundtrip,
    "weighted-serialize-roundtrip": check_weighted_serialize_roundtrip,
    "graph-io-roundtrip": check_graph_io_roundtrip,
    "kernel-reference": check_kernel_reference,
    "simulation-agreement": check_simulation_agreement,
    "ranges-consistency": check_ranges_consistency,
}
"""Name → check, in execution order.  Names are stable API: the corpus,
the CLI ``--invariant`` filter and :doc:`docs/fuzzing.md` all use them."""


def check_game(
    game: TupleGame,
    tolerance: float = DEFAULT_TOLERANCE,
    checks: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Run the selected invariants (default: all) against one game.

    Exceptions inside a check are converted into ``crash`` violations so
    a single pathological instance cannot abort a fuzz batch.
    """
    names = list(INVARIANTS) if checks is None else list(checks)
    violations: List[Violation] = []
    for name in names:
        try:
            check = INVARIANTS[name]
        except KeyError:
            raise ValueError(
                f"unknown invariant {name!r}; known: {sorted(INVARIANTS)}"
            ) from None
        try:
            violations.extend(check(game, tolerance))
        except Exception as exc:  # noqa: BLE001 — a crash IS a finding
            violations.append(Violation(
                name, f"check crashed: {type(exc).__name__}: {exc}",
            ))
    return violations
