"""Delta-debugging for failing fuzz cases.

A raw counterexample from the generator is noisy: dozens of edges, most
irrelevant to the divergence.  :func:`shrink_spec` reduces it against a
caller-supplied *predicate* ("does this smaller game still fail?") in
three deterministic passes:

1. **edges** — ddmin-style chunked deletion (halving chunk sizes, then
   single edges) over the canonical edge order.  Removing an edge may
   strand a vertex; the candidate graph is rebuilt from the surviving
   edges alone, so stranded vertices simply disappear.
2. **k** — lower the defender power toward 1.
3. **ν** — lower the attacker count toward 1.

The predicate must be deterministic (the fuzz invariants are); shrinking
re-runs it ``O(m log m)`` times, so callers should hand in the *cheapest*
reproducer — typically a single invariant, not the whole catalog.

There is no randomness here at all: the same failing spec and predicate
always shrink to the same minimal counterexample, which is what makes the
persisted corpus diffable.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.game import GameError
from repro.core.tuples import count_tuples
from repro.fuzz.generators import GameSpec
from repro.graphs.core import Graph, GraphError, Vertex
from repro.obs import get_logger, metrics

__all__ = ["shrink_spec"]

_log = get_logger("repro.fuzz.shrink")

Predicate = Callable[[GameSpec], bool]
Edge = Tuple[Vertex, Vertex]


def _candidate(
    edges: Sequence[Edge], template: GameSpec, k: Optional[int] = None,
    nu: Optional[int] = None,
) -> Optional[GameSpec]:
    """Build a reduced spec, or ``None`` if the reduction is not a game."""
    k = template.k if k is None else k
    nu = template.nu if nu is None else nu
    if not edges or k < 1 or nu < 1 or k > len(edges):
        return None
    try:
        graph = Graph(edges)
        graph.validate_for_game()
    except (GraphError, GameError):
        return None
    spec = GameSpec(
        edges, k, nu,
        family="shrunk:" + template.family.removeprefix("shrunk:"),
        label_mode=template.label_mode, seed=template.seed,
    )
    return spec


def _try(spec: Optional[GameSpec], predicate: Predicate) -> bool:
    if spec is None:
        return False
    metrics.counter("fuzz.shrink.probes.count").inc()
    try:
        return bool(predicate(spec))
    except Exception:  # noqa: BLE001 — treat a crashing probe as "no"
        return False


def _shrink_edges(spec: GameSpec, predicate: Predicate) -> GameSpec:
    """ddmin over the edge list: try dropping halves, then quarters, ...
    down to single edges, restarting whenever a deletion sticks."""
    edges: List[Edge] = list(spec.edges)
    chunk = max(1, len(edges) // 2)
    while chunk >= 1:
        shrunk_this_pass = False
        start = 0
        while start < len(edges):
            remaining = edges[:start] + edges[start + chunk:]
            candidate = _candidate(remaining, spec)
            if _try(candidate, predicate):
                assert candidate is not None
                edges = list(candidate.edges)
                spec = candidate
                shrunk_this_pass = True
                # Do not advance: the chunk now at ``start`` is new.
            else:
                start += chunk
        if chunk == 1 and not shrunk_this_pass:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else (
            max(1, len(edges) // 2) if shrunk_this_pass else 0
        )
    return spec


def _shrink_param(
    spec: GameSpec, predicate: Predicate, param: str
) -> GameSpec:
    """Lower ``k`` or ``nu`` as far as the failure allows."""
    while getattr(spec, param) > 1:
        lowered = _candidate(
            spec.edges, spec,
            k=spec.k - 1 if param == "k" else None,
            nu=spec.nu - 1 if param == "nu" else None,
        )
        if not _try(lowered, predicate):
            break
        assert lowered is not None
        spec = lowered
    return spec


def shrink_spec(
    spec: GameSpec,
    predicate: Predicate,
    max_probes: int = 2_000,
) -> GameSpec:
    """Reduce a failing spec to a smaller one that still fails.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the failure.  The input spec itself is expected to satisfy
    the predicate; if it does not, it is returned unchanged (nothing to
    shrink against).  ``max_probes`` bounds the total predicate calls via
    the ``fuzz.shrink.probes.count`` metric delta — a safety valve for
    expensive reproducers.
    """
    if not _try(spec, predicate):
        _log.warning("fuzz.shrink.predicate_rejects_input")
        return spec
    probes = metrics.counter("fuzz.shrink.probes.count")
    start_probes = probes.value
    budget: Predicate = lambda s: (
        probes.value - start_probes < max_probes and predicate(s)
    )
    with metrics.timer("fuzz.shrink.seconds"):
        before = (len(spec.edges), spec.k, spec.nu)
        while True:
            reduced = _shrink_edges(spec, budget)
            reduced = _shrink_param(reduced, budget, "k")
            reduced = _shrink_param(reduced, budget, "nu")
            if (len(reduced.edges), reduced.k, reduced.nu) == (
                len(spec.edges), spec.k, spec.nu
            ):
                break  # fixpoint: another round cannot make progress
            spec = reduced
        after = (len(spec.edges), spec.k, spec.nu)
    _log.info("fuzz.shrink.done", before=before, after=after)
    metrics.counter("fuzz.shrink.runs.count").inc()
    return spec
