"""Random game generation for the differential fuzzer.

Every case is a :class:`GameSpec` — a *concrete* graph (edges, not a
generator call) plus ``(k, ν)`` and provenance metadata.  Storing the
materialized edges rather than the recipe keeps three consumers honest:

* the corpus (:mod:`repro.fuzz.corpus`) replays a byte-identical game no
  matter how the generator registry evolves;
* the shrinker (:mod:`repro.fuzz.shrink`) can delete edges one by one
  without needing an inverse of the generator;
* a failure report shows the exact instance, not a seed to decode.

Generation is fully deterministic: all randomness flows through the
``random.Random`` instance handed in by the caller, so a master seed
reproduces the whole batch.  Alongside the stock families from
:mod:`repro.graphs.generators` the sampler injects the adversarial shapes
that historically break solvers: multi-component graphs (disjoint unions),
string and mixed int/str vertex labels, and the exact ``n = 2k + 1``
boundary of Corollary 3.3 (odd cycles where the defender is one edge short
of a cover).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.game import GameError, TupleGame
from repro.core.tuples import count_tuples
from repro.graphs.core import (
    Graph,
    Vertex,
    canonical_edge,
    edge_sort_key,
    vertex_sort_key,
)
from repro.graphs.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    double_star_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_bipartite_graph,
    random_connected_graph,
    random_tree,
    star_graph,
    wheel_graph,
)
from repro.graphs.transform import disjoint_union

__all__ = [
    "GameSpec",
    "FAMILIES",
    "LABEL_MODES",
    "SPEC_FORMAT",
    "random_spec",
]

SPEC_FORMAT = "repro.fuzz.case.v1"

#: Keep every sampled instance inside the budget of the *exact* solver
#: paths: the full LP enumerates ``C(m, k)`` tuples and the smoke gate
#: runs dozens of games in seconds.
_TUPLE_BUDGET = 500
_MAX_K = 3
_MAX_NU = 3

LABEL_MODES: Tuple[str, ...] = ("int", "str", "mixed")
"""Vertex relabeling modes: consecutive ints, ``"v{i}"`` strings, or an
alternating int/string mix (unsortable by bare ``sorted``)."""


class GameSpec:
    """A concrete, replayable fuzz case.

    Attributes
    ----------
    edges:
        The materialized edge list (canonically sorted).  The vertex set
        is implied — fuzz instances never have isolated vertices.
    k / nu:
        Game parameters for :class:`~repro.core.game.TupleGame`.
    family:
        Provenance: generator-family name (``"cycle"``, ``"union"``,
        ``"odd-boundary"``, ``"shrunk"``, ...).
    label_mode:
        Which relabeling was applied (one of :data:`LABEL_MODES`).
    seed:
        The per-case derived seed, for log forensics only — replay uses
        the edges, never the seed.
    """

    __slots__ = ("edges", "k", "nu", "family", "label_mode", "seed")

    def __init__(
        self,
        edges: Sequence[Tuple[Vertex, Vertex]],
        k: int,
        nu: int,
        family: str = "unknown",
        label_mode: str = "int",
        seed: int = 0,
    ) -> None:
        self.edges = tuple(
            sorted((canonical_edge(*e) for e in edges), key=edge_sort_key)
        )
        self.k = int(k)
        self.nu = int(nu)
        self.family = str(family)
        self.label_mode = str(label_mode)
        self.seed = int(seed)

    def to_game(self) -> TupleGame:
        """Materialize the :class:`TupleGame` (re-validating everything)."""
        return TupleGame(Graph(self.edges), self.k, self.nu)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict; inverse of :meth:`from_payload`."""
        return {
            "format": SPEC_FORMAT,
            "edges": [list(e) for e in self.edges],
            "k": self.k,
            "nu": self.nu,
            "family": self.family,
            "label_mode": self.label_mode,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "GameSpec":
        """Rebuild a spec from :meth:`to_payload` output (strict)."""
        if not isinstance(payload, dict) or payload.get("format") != SPEC_FORMAT:
            raise GameError(
                f"unrecognized fuzz-case format (expected {SPEC_FORMAT!r})"
            )
        try:
            edges = [tuple(e) for e in payload["edges"]]
            for e in edges:
                if len(e) != 2:
                    raise GameError(f"edge {e!r} is not a pair")
            return cls(
                edges,
                int(payload["k"]),
                int(payload["nu"]),
                family=payload.get("family", "unknown"),
                label_mode=payload.get("label_mode", "int"),
                seed=int(payload.get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GameError(f"malformed fuzz-case payload: {exc}") from exc

    def describe(self) -> str:
        g = Graph(self.edges)
        return (
            f"{self.family}[{self.label_mode}] n={g.n} m={g.m} "
            f"k={self.k} nu={self.nu}"
        )

    def __repr__(self) -> str:
        return f"GameSpec({self.describe()}, seed={self.seed})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GameSpec):
            return NotImplemented
        return (self.edges, self.k, self.nu) == (other.edges, other.k, other.nu)

    def __hash__(self) -> int:
        return hash((self.edges, self.k, self.nu))


# --------------------------------------------------------------------------
# family registry


def _derived(rng: random.Random) -> int:
    """A fresh 32-bit sub-seed for the seeded stock generators."""
    return rng.randrange(2**32)


FAMILIES: Dict[str, Callable[[random.Random], Graph]] = {
    "path": lambda rng: path_graph(rng.randint(2, 8)),
    "cycle": lambda rng: cycle_graph(rng.randint(3, 8)),
    "complete": lambda rng: complete_graph(rng.randint(3, 5)),
    "complete-bipartite": lambda rng: complete_bipartite_graph(
        rng.randint(1, 3), rng.randint(2, 3)
    ),
    "star": lambda rng: star_graph(rng.randint(2, 6)),
    "double-star": lambda rng: double_star_graph(
        rng.randint(1, 3), rng.randint(1, 3)
    ),
    "grid": lambda rng: grid_graph(2, rng.randint(2, 4)),
    "wheel": lambda rng: wheel_graph(rng.randint(3, 5)),
    "random-tree": lambda rng: random_tree(rng.randint(3, 8), seed=_derived(rng)),
    "random-connected": lambda rng: random_connected_graph(
        rng.randint(4, 7), rng.randint(1, 3), seed=_derived(rng)
    ),
    "random-bipartite": lambda rng: random_bipartite_graph(
        rng.randint(2, 3), rng.randint(2, 4), 0.5, seed=_derived(rng)
    ),
    "gnp": lambda rng: gnp_random_graph(
        rng.randint(4, 7), 0.4, seed=_derived(rng)
    ),
}
"""Base shape registry — every entry yields a small valid game graph."""


def _relabel_graph(graph: Graph, mode: str) -> Graph:
    """Map the vertex set onto the requested label domain.

    Canonical-order indices keep the relabeling deterministic for a given
    input graph, whatever labels the family or union step produced.
    """
    ordered = sorted(graph.vertices(), key=vertex_sort_key)
    if mode == "int":
        mapping: Dict[Vertex, Vertex] = {v: i for i, v in enumerate(ordered)}
    elif mode == "str":
        mapping = {v: f"v{i}" for i, v in enumerate(ordered)}
    elif mode == "mixed":
        mapping = {
            v: (i if i % 2 == 0 else f"s{i}") for i, v in enumerate(ordered)
        }
    else:
        raise GameError(f"unknown label mode {mode!r}")
    return Graph((mapping[u], mapping[v]) for u, v in graph.edges())


def _fit_k(graph: Graph, k: int) -> int:
    """Largest ``k' ≤ k`` whose tuple count fits the exact-path budget."""
    k = max(1, min(k, graph.m))
    while k > 1 and count_tuples(graph, k) > _TUPLE_BUDGET:
        k -= 1
    return k


def random_spec(rng: random.Random, seed: int = 0) -> GameSpec:
    """Sample one fuzz case.

    ``rng`` drives every choice; ``seed`` is recorded as provenance.
    Mix: ~60% single stock family, ~20% two-component disjoint union,
    ~20% the ``n = 2k + 1`` odd-cycle boundary of Corollary 3.3.
    """
    label_mode = rng.choice(LABEL_MODES)
    shape = rng.random()
    if shape < 0.2:
        # C3.3 boundary: an odd cycle C_{2k+1} has ρ(G) = k + 1, so the
        # defender is exactly one edge short of a pure equilibrium.
        k = rng.randint(1, _MAX_K)
        graph = cycle_graph(2 * k + 1)
        family = "odd-boundary"
    elif shape < 0.4:
        names = rng.sample(sorted(FAMILIES), 2)
        graph = disjoint_union(FAMILIES[names[0]](rng), FAMILIES[names[1]](rng))
        family = f"union:{names[0]}+{names[1]}"
        k = rng.randint(1, _MAX_K)
    else:
        name = rng.choice(sorted(FAMILIES))
        graph = FAMILIES[name](rng)
        family = name
        k = rng.randint(1, _MAX_K)
    graph = _relabel_graph(graph, label_mode)
    k = _fit_k(graph, k)
    nu = rng.randint(1, _MAX_NU)
    return GameSpec(
        graph.sorted_edges(), k, nu,
        family=family, label_mode=label_mode, seed=seed,
    )
