"""The persisted counterexample corpus.

Every failing case the fuzzer has ever shrunk is kept as a small JSON
document under ``tests/corpus/`` and replayed by the ``fuzz-smoke`` CI
gate, so a solver regression that re-introduces an old divergence fails
immediately — the corpus is the fuzzer's long-term memory.

File naming is *content-addressed*: the name is a SHA-256 prefix of the
canonical game payload (edges, k, ν — not the provenance metadata), so
re-discovering a known counterexample is an idempotent write and the
directory never accumulates duplicates or depends on wall-clock state.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.game import GameError
from repro.fuzz.generators import GameSpec
from repro.fuzz.invariants import Violation
from repro.obs import get_logger, metrics, tracing

__all__ = ["case_id", "save_case", "load_case", "iter_corpus"]

_log = get_logger("repro.fuzz.corpus")

PathLike = Union[str, Path]

_ID_HEX_DIGITS = 12


def case_id(spec: GameSpec) -> str:
    """Deterministic content address of a spec's *game* (not provenance)."""
    canonical = json.dumps(
        {
            "edges": [list(e) for e in spec.edges],
            "k": spec.k,
            "nu": spec.nu,
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:_ID_HEX_DIGITS]


def _case_path(directory: Path, spec: GameSpec) -> Path:
    return directory / f"case-{case_id(spec)}.json"


def save_case(
    directory: PathLike,
    spec: GameSpec,
    violations: Sequence[Violation] = (),
) -> Path:
    """Persist one (usually shrunk) case; returns the file path.

    The violations observed at save time ride along as annotations — they
    document *why* the case entered the corpus but play no role in replay,
    which always re-runs the full invariant catalog.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = _case_path(directory, spec)
    payload = spec.to_payload()
    payload["violations"] = [v.to_payload() for v in violations]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    metrics.counter("fuzz.corpus.saved.count").inc()
    _log.info("fuzz.corpus.saved", path=str(path), case=spec.describe())
    return path


def load_case(path: PathLike) -> GameSpec:
    """Read one corpus file back into a replayable spec (strict)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise GameError(f"corrupt corpus file {path}: {exc}") from exc
    return GameSpec.from_payload(payload)


def iter_corpus(directory: PathLike) -> Iterator[Tuple[Path, GameSpec]]:
    """Yield ``(path, spec)`` for every case file, in sorted name order.

    A missing directory is an empty corpus, not an error — the smoke gate
    must pass on a fresh checkout before any counterexample exists.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return
    with tracing.span("fuzz.corpus.scan", directory=str(directory)):
        for path in sorted(directory.glob("case-*.json")):
            yield path, load_case(path)
