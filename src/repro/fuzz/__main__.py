"""``python -m repro.fuzz`` — standalone driver for the differential fuzzer.

Mirrors the ``repro-defender fuzz`` subcommand for environments where the
console script is not installed (the ``make fuzz-smoke`` CI gate uses this
form).  Exit code 0 means every game satisfied every invariant; 1 means at
least one divergence; 2 is a usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.fuzz.runner import add_fuzz_arguments, run_fuzz_from_args


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the Π_k(G) solver stack",
    )
    add_fuzz_arguments(parser)
    return run_fuzz_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
