"""Differential fuzzing of the solver stack (``repro.fuzz``).

The paper gives several independent routes to the same quantities — the
structural cascade of Theorem 4.5, the exact LP minimax, double oracle,
fictitious play — and agreement between them is the strongest correctness
signal the reproduction has.  This package turns that redundancy into a
test oracle: generate random games (including adversarial label and
topology shapes), run every route, and flag any disagreement; failures
are delta-debugged to minimal counterexamples and persisted into a
replayable corpus (``tests/corpus/``) so they become permanent regression
tests.

Entry points: the ``repro-defender fuzz`` CLI subcommand,
``python -m repro.fuzz``, and ``make fuzz-smoke`` (corpus replay plus a
fixed-seed fresh batch).  See ``docs/fuzzing.md`` for the invariant
catalog and workflow.
"""

from repro.fuzz.corpus import case_id, iter_corpus, load_case, save_case
from repro.fuzz.generators import FAMILIES, LABEL_MODES, GameSpec, random_spec
from repro.fuzz.invariants import (
    DEFAULT_TOLERANCE,
    INVARIANTS,
    Violation,
    check_game,
)
from repro.fuzz.runner import (
    CaseResult,
    FuzzReport,
    add_fuzz_arguments,
    replay_corpus,
    run_fuzz,
    run_fuzz_from_args,
)
from repro.fuzz.shrink import shrink_spec

__all__ = [
    "GameSpec",
    "FAMILIES",
    "LABEL_MODES",
    "random_spec",
    "Violation",
    "INVARIANTS",
    "check_game",
    "DEFAULT_TOLERANCE",
    "shrink_spec",
    "case_id",
    "save_case",
    "load_case",
    "iter_corpus",
    "CaseResult",
    "FuzzReport",
    "run_fuzz",
    "replay_corpus",
    "add_fuzz_arguments",
    "run_fuzz_from_args",
]
